//! The multi-process transport runner: a coordinator that spawns **one
//! worker process per shard** and drives a full simulation across process
//! boundaries, every cross-shard message wire-encoded over TCP.
//!
//! Without `--worker`, the binary is the coordinator: it builds the graph,
//! binds a loopback TCP listener, re-executes itself once per shard in
//! worker mode, relays the round frames between the workers
//! ([`dcme_congest::transport::coordinate`]) and prints the merged
//! [`RunMetrics`].  With `--worker SHARD --connect ADDR` it serves exactly
//! one shard ([`dcme_congest::transport::serve_shard`]) and exits.
//!
//! Every process derives the same topology and workload deterministically
//! from the shared arguments, so the run is bit-for-bit comparable to an
//! in-process sequential run — which `--verify` checks end to end.
//!
//! ```sh
//! # 4 worker processes over a 200k-node random 4-regular circulant:
//! cargo run -p dcme_bench --release --bin exp_worker
//! # CI-sized smoke with verification against the sequential executor:
//! cargo run -p dcme_bench --release --bin exp_worker -- \
//!     --n 4000 --shards 2 --graph circulant4 --verify
//! ```

use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};

use dcme_bench::workloads;
use dcme_congest::{transport, JsonLinesWriter, RunMetrics, Simulator, SimulatorConfig};

/// Shared run parameters; every worker re-derives the topology from these.
#[derive(Debug, Clone)]
struct Params {
    n: usize,
    shards: usize,
    graph: String,
    tail: u64,
    seed: u64,
    max_rounds: u64,
}

struct Args {
    params: Params,
    worker: Option<usize>,
    connect: Option<String>,
    verify: bool,
    jsonl: Option<std::path::PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_worker [--n N] [--shards S] [--graph ring|circulant4] [--tail T] \
         [--seed SEED] [--max-rounds R] [--verify] [--jsonl PATH]\n\
         \x20      exp_worker --worker SHARD --connect HOST:PORT <same run parameters>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        params: Params {
            n: 200_000,
            shards: 4,
            graph: "circulant4".to_string(),
            tail: 12,
            seed: 7,
            max_rounds: 1_000_000,
        },
        worker: None,
        connect: None,
        verify: false,
        jsonl: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--n" => args.params.n = value("--n").parse().unwrap_or_else(|_| usage()),
            "--shards" => {
                args.params.shards = value("--shards").parse().unwrap_or_else(|_| usage())
            }
            "--graph" => args.params.graph = value("--graph"),
            "--tail" => args.params.tail = value("--tail").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.params.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-rounds" => {
                args.params.max_rounds = value("--max-rounds").parse().unwrap_or_else(|_| usage())
            }
            "--worker" => args.worker = Some(value("--worker").parse().unwrap_or_else(|_| usage())),
            "--connect" => args.connect = Some(value("--connect")),
            "--verify" => args.verify = true,
            "--jsonl" => args.jsonl = Some(value("--jsonl").into()),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let result = match args.worker {
        Some(shard) => run_worker(&args.params, shard, args.connect.as_deref()),
        None => run_coordinator(&args.params, args.verify, args.jsonl.as_deref()),
    };
    if let Err(e) = result {
        eprintln!("exp_worker: {e}");
        std::process::exit(1);
    }
}

/// Worker mode: connect to the coordinator, serve one shard, exit.
fn run_worker(params: &Params, shard: usize, connect: Option<&str>) -> std::io::Result<()> {
    let addr = connect.unwrap_or_else(|| {
        eprintln!("--worker requires --connect HOST:PORT");
        usage()
    });
    let g = workloads::build_graph(&params.graph, params.n, params.shards, params.seed)
        .map_err(std::io::Error::other)?;
    let nodes = workloads::gossip_nodes(g.shard_nodes(shard), params.tail);
    let mut link = TcpStream::connect(addr)?;
    link.set_nodelay(true)?;
    transport::serve_shard(&mut link, &g, shard, nodes)
}

/// Coordinator mode: spawn one worker process per shard and run the
/// simulation across the process boundary.
fn run_coordinator(
    params: &Params,
    verify: bool,
    jsonl: Option<&std::path::Path>,
) -> std::io::Result<()> {
    let g = workloads::build_graph(&params.graph, params.n, params.shards, params.seed)
        .map_err(std::io::Error::other)?;
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;

    let exe = std::env::current_exe()?;
    let mut children: Vec<Child> = Vec::with_capacity(params.shards);
    for shard in 0..params.shards {
        children.push(
            Command::new(&exe)
                .args([
                    "--worker",
                    &shard.to_string(),
                    "--connect",
                    &addr.to_string(),
                    "--n",
                    &params.n.to_string(),
                    "--shards",
                    &params.shards.to_string(),
                    "--graph",
                    &params.graph,
                    "--tail",
                    &params.tail.to_string(),
                    "--seed",
                    &params.seed.to_string(),
                ])
                .stdin(Stdio::null())
                .spawn()?,
        );
    }

    // Links arrive in arbitrary order; `coordinate` sorts them out by the
    // shard index of each worker's initial vote.  The accept loop is
    // nonblocking so a worker that dies before connecting (bad args, OOM)
    // is reported instead of hanging the coordinator forever.
    listener.set_nonblocking(true)?;
    let mut links = Vec::with_capacity(params.shards);
    while links.len() < params.shards {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                links.push(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                for child in children.iter_mut() {
                    if let Some(status) = child.try_wait()? {
                        return Err(std::io::Error::other(format!(
                            "a worker process exited with {status} before connecting"
                        )));
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    listener.set_nonblocking(false)?;
    let t = std::time::Instant::now();
    let outcome = transport::coordinate::<u64, _>(links, &g, params.max_rounds);
    let wall = t.elapsed();
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(std::io::Error::other(format!(
                "a worker process exited with {status}"
            )));
        }
    }
    let outcome = outcome?;

    let label = format!(
        "exp_worker/{}/n{}/shards{}",
        params.graph, params.n, params.shards
    );
    println!(
        "{label}: rounds={} messages={} cross_shard={} wire_bytes={} flush_ms={:.2} wall_ms={:.0}",
        outcome.metrics.rounds,
        outcome.metrics.messages,
        outcome.metrics.cross_shard_messages,
        outcome.metrics.wire_bytes_sent,
        outcome.metrics.transport_flush_nanos as f64 / 1e6,
        wall.as_secs_f64() * 1e3,
    );
    if let Some(path) = jsonl {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        JsonLinesWriter::new(file).append(&label, &outcome.metrics)?;
    }

    if verify {
        let reference = Simulator::with_config(
            &g,
            SimulatorConfig {
                max_rounds: params.max_rounds,
                ..SimulatorConfig::default()
            },
        )
        .run(workloads::gossip_nodes(0..params.n, params.tail));
        check_equal(&reference.metrics, &outcome.metrics)?;
        if reference.outputs != outcome.outputs {
            return Err(std::io::Error::other(
                "multi-process outputs diverged from the sequential executor",
            ));
        }
        println!("verify: OK (bit-for-bit vs sequential executor)");
    }
    Ok(())
}

fn check_equal(seq: &RunMetrics, multi: &RunMetrics) -> std::io::Result<()> {
    let pairs = [
        ("rounds", seq.rounds, multi.rounds),
        ("messages", seq.messages, multi.messages),
        ("total_bits", seq.total_bits, multi.total_bits),
        (
            "max_message_bits",
            seq.max_message_bits,
            multi.max_message_bits,
        ),
    ];
    for (name, a, b) in pairs {
        if a != b {
            return Err(std::io::Error::other(format!(
                "multi-process {name} diverged: sequential {a} vs multi-process {b}"
            )));
        }
    }
    if seq.active_per_round != multi.active_per_round {
        return Err(std::io::Error::other("active_per_round diverged"));
    }
    Ok(())
}
