//! The multi-process transport runner: a coordinator that drives **one
//! worker process per shard** across process boundaries, every cross-shard
//! message wire-encoded over TCP.
//!
//! Without `--worker`, the binary is the coordinator: it binds a loopback
//! TCP listener, spawns (or, with `--hosts`, waits for) one worker per
//! shard, paces the rounds ([`dcme_congest::transport::coordinate`]) and
//! prints the merged [`RunMetrics`].  With `--worker SHARD --connect ADDR`
//! it serves exactly one shard and exits.
//!
//! Every worker builds **only its own shard slice**
//! ([`dcme_congest::ShardSliceTopology`]) by replaying the deterministic
//! edge stream of the named graph family against the run's
//! [`dcme_congest::ShardPlan`] — no process ever materializes the full
//! graph (the coordinator computes just the plan, and only in mesh mode).
//!
//! Two data planes:
//!
//! * **relay** (default): workers send data frames to the coordinator,
//!   which forwards them — the original star topology.
//! * **mesh** (`--mesh`): workers announce their listen addresses, receive
//!   the plan plus the full peer list from the coordinator, open a direct
//!   worker↔worker TCP mesh and exchange data frames peer-to-peer; the
//!   coordinator carries only RoundStart/Vote/Output control frames
//!   (`relayed_data_bytes` stays 0).
//!
//! For multi-host runs, start the coordinator with `--mesh --hosts FILE`
//! (one worker address per line, shard order; the shard-count/host-list
//! match is validated up front — a mismatch is a typed error, never a hang;
//! `--hosts` without `--mesh` is a usage error, since relay mode spawns its
//! own local workers) and each worker with `--worker SHARD --connect COORD
//! --mesh --listen ADDR [--advertise HOST]`.
//!
//! Live telemetry: with `--progress` every worker emits a `Stats` control
//! frame every k rounds (default 64; `--stats-every K` overrides, and also
//! works without `--progress` for silent collection), which the coordinator
//! renders as `heartbeat:` lines on stderr — per-worker round progress,
//! active count, wire bytes, peak RSS and round rate, so a stalled
//! multi-hour mesh run shows *which* worker stopped voting.
//!
//! Remote tracing: with `--trace FILE` every worker captures its own trace
//! events against a local monotonic clock and ships them to the coordinator
//! as one final `Trace` control frame; the coordinator merges them with its
//! own engine-track events into a single Chrome-trace file (one named
//! `pid` per worker, loadable in Perfetto).  Tracing rides strictly
//! out-of-band — a traced run stays bit-for-bit identical to an untraced
//! one, in relay and mesh modes alike.
//!
//! Every process derives the same topology and workload deterministically
//! from the shared arguments, so the run is bit-for-bit comparable to an
//! in-process sequential run — which `--verify` checks end to end.
//!
//! ```sh
//! # 4 worker processes over a 200k-node random 4-regular circulant:
//! cargo run -p dcme_bench --release --bin exp_worker
//! # Same run with the direct worker↔worker data mesh:
//! cargo run -p dcme_bench --release --bin exp_worker -- --mesh
//! # CI-sized smoke with verification against the sequential executor:
//! cargo run -p dcme_bench --release --bin exp_worker -- \
//!     --n 4000 --shards 2 --graph circulant4 --mesh --verify
//! ```

use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};

use dcme_bench::workloads;
use dcme_congest::{
    transport, JsonLinesWriter, RunMetrics, ShardPlan, ShardSliceTopology, ShardTopologyView,
    Simulator, SimulatorConfig,
};

/// Shared run parameters; every worker re-derives the topology from these.
#[derive(Debug, Clone)]
struct Params {
    n: usize,
    shards: usize,
    graph: String,
    tail: u64,
    seed: u64,
    max_rounds: u64,
    mesh: bool,
    stats_every: u64,
}

struct Args {
    params: Params,
    worker: Option<usize>,
    connect: Option<String>,
    listen: String,
    advertise: Option<String>,
    hosts: Option<std::path::PathBuf>,
    verify: bool,
    jsonl: Option<std::path::PathBuf>,
    progress: bool,
    trace: Option<std::path::PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_worker [--n N] [--shards S] [--graph ring|circulant4] [--tail T] \
         [--seed SEED] [--max-rounds R] [--mesh] [--hosts FILE] [--listen ADDR] \
         [--verify] [--jsonl PATH] [--progress] [--stats-every K] [--trace FILE]\n\
         \x20      exp_worker --worker SHARD --connect HOST:PORT [--mesh] [--listen ADDR] \
         [--advertise HOST] <same run parameters>\n\
         \x20      --hosts requires --mesh (external workers join over the data mesh);\n\
         \x20      --progress renders worker Stats frames as stderr heartbeat lines\n\
         \x20      (implies --stats-every 64 unless set explicitly);\n\
         \x20      --trace FILE writes one merged Chrome trace (engine track + one track\n\
         \x20      per worker process) the coordinator assembles from Trace control frames"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        params: Params {
            n: 200_000,
            shards: 4,
            graph: "circulant4".to_string(),
            tail: 12,
            seed: 7,
            max_rounds: 1_000_000,
            mesh: false,
            stats_every: 0,
        },
        worker: None,
        connect: None,
        listen: "127.0.0.1:0".to_string(),
        advertise: None,
        hosts: None,
        verify: false,
        jsonl: None,
        progress: false,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--n" => args.params.n = value("--n").parse().unwrap_or_else(|_| usage()),
            "--shards" => {
                args.params.shards = value("--shards").parse().unwrap_or_else(|_| usage())
            }
            "--graph" => args.params.graph = value("--graph"),
            "--tail" => args.params.tail = value("--tail").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.params.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-rounds" => {
                args.params.max_rounds = value("--max-rounds").parse().unwrap_or_else(|_| usage())
            }
            "--mesh" => args.params.mesh = true,
            "--worker" => args.worker = Some(value("--worker").parse().unwrap_or_else(|_| usage())),
            "--connect" => args.connect = Some(value("--connect")),
            "--listen" => args.listen = value("--listen"),
            "--advertise" => args.advertise = Some(value("--advertise")),
            "--hosts" => args.hosts = Some(value("--hosts").into()),
            "--verify" => args.verify = true,
            "--jsonl" => args.jsonl = Some(value("--jsonl").into()),
            "--progress" => args.progress = true,
            "--stats-every" => {
                args.params.stats_every = value("--stats-every").parse().unwrap_or_else(|_| usage())
            }
            "--trace" => args.trace = Some(value("--trace").into()),
            _ => usage(),
        }
    }
    // `--hosts` only reaches external workers through the mesh handshake;
    // in relay mode the coordinator spawns its own workers and the file
    // would be silently ignored — reject the combination up front.
    if args.hosts.is_some() && !args.params.mesh {
        eprintln!("exp_worker: --hosts requires --mesh");
        usage()
    }
    // `--progress` without an explicit cadence picks a default one.
    if args.progress && args.params.stats_every == 0 {
        args.params.stats_every = 64;
    }
    args
}

fn main() {
    let args = parse_args();
    let jsonl = args
        .jsonl
        .clone()
        .or_else(|| std::env::var_os("DCME_METRICS_JSONL").map(Into::into));
    let result = match args.worker {
        Some(shard) => run_worker(
            &args.params,
            shard,
            args.connect.as_deref(),
            &args.listen,
            args.advertise.as_deref(),
            args.trace.is_some(),
        ),
        None => run_coordinator(
            &args.params,
            args.hosts.as_deref(),
            &args.listen,
            args.verify,
            jsonl.as_deref(),
            args.progress,
            args.trace.as_deref(),
        ),
    };
    if let Err(e) = result {
        eprintln!("exp_worker: {e}");
        std::process::exit(1);
    }
}

/// Builds this worker's shard slice by replaying the family's edge stream
/// against `plan` — the only topology this process ever holds.
fn build_slice(
    params: &Params,
    plan: ShardPlan,
    shard: usize,
) -> std::io::Result<ShardSliceTopology> {
    let stream = workloads::graph_stream(&params.graph, params.n, params.seed)
        .map_err(std::io::Error::other)?;
    ShardSliceTopology::build(plan, shard, stream)
        .map_err(|e| std::io::Error::other(format!("restricted shard build failed: {e}")))
}

/// Worker mode: connect to the coordinator, serve one shard, exit.  With
/// `traced` the worker captures its trace events and ships them to the
/// coordinator as one final Trace frame (the coordinator owns the file).
fn run_worker(
    params: &Params,
    shard: usize,
    connect: Option<&str>,
    listen: &str,
    advertise: Option<&str>,
    traced: bool,
) -> std::io::Result<()> {
    let addr = connect.unwrap_or_else(|| {
        eprintln!("--worker requires --connect HOST:PORT");
        usage()
    });
    let mut link = TcpStream::connect(addr)?;
    link.set_nodelay(true)?;
    let me = shard as u16;

    if params.mesh {
        // Mesh handshake: announce the mesh listen address, receive the
        // coordinator's plan and the full peer list, build only this
        // shard's slice, then wire up the direct data plane.
        let listener = TcpListener::bind(listen)?;
        let bound = listener.local_addr()?;
        let announced = match advertise {
            Some(host) => format!("{host}:{}", bound.port()),
            None => bound.to_string(),
        };
        transport::write_peers(&mut link, me, transport::COORDINATOR, &[(me, announced)])?;
        let plan = transport::read_plan(&mut link, me)?;
        if plan.num_nodes() != params.n || plan.num_shards() != params.shards {
            return Err(std::io::Error::other(format!(
                "coordinator plan ({} nodes, {} shards) disagrees with this worker's parameters ({}, {})",
                plan.num_nodes(),
                plan.num_shards(),
                params.n,
                params.shards,
            )));
        }
        let peers = transport::read_peers(&mut link, transport::COORDINATOR, me)?;
        let slice = build_slice(params, plan, shard)?;
        let mesh = transport::WorkerMesh::connect(me, params.shards, &peers, &listener)?;
        let nodes = workloads::gossip_nodes(slice.shard_nodes(shard), params.tail);
        transport::serve_shard_with(
            &mut link,
            &slice,
            shard,
            nodes,
            &mut transport::DataPlane::Mesh(mesh),
            &transport::ServeOptions {
                stats_every: params.stats_every,
                trace: traced,
            },
        )
    } else {
        // Relay mode needs no handshake: the worker derives the plan itself
        // (the cheap counting pass) and still holds only its own slice.
        let stream = workloads::graph_stream(&params.graph, params.n, params.seed)
            .map_err(std::io::Error::other)?;
        let plan = ShardPlan::from_edge_stream(params.n, params.shards, stream)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let slice = build_slice(params, plan, shard)?;
        let nodes = workloads::gossip_nodes(slice.shard_nodes(shard), params.tail);
        transport::serve_shard_with(
            &mut link,
            &slice,
            shard,
            nodes,
            &mut transport::DataPlane::Relay,
            &transport::ServeOptions {
                stats_every: params.stats_every,
                trace: traced,
            },
        )
    }
}

/// Reads a hosts file: one worker address per line (shard order), blank
/// lines and `#` comments ignored — validated against the shard count
/// before anything listens or dials, so a mismatch is a typed error
/// instead of a hang.
fn read_hosts(path: &std::path::Path, shards: usize) -> std::io::Result<Vec<(u16, String)>> {
    let text = std::fs::read_to_string(path)?;
    let hosts: Vec<(u16, String)> = text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .enumerate()
        .map(|(shard, line)| (shard as u16, line.to_string()))
        .collect();
    transport::validate_peer_list(&hosts, shards).map_err(std::io::Error::from)?;
    Ok(hosts)
}

/// Coordinator mode: spawn (or await) one worker process per shard and run
/// the simulation across the process boundary.  Holds the `ShardPlan` at
/// most — never the graph itself (`--verify` excepted).
fn run_coordinator(
    params: &Params,
    hosts: Option<&std::path::Path>,
    listen: &str,
    verify: bool,
    jsonl: Option<&std::path::Path>,
    progress: bool,
    trace: Option<&std::path::Path>,
) -> std::io::Result<()> {
    let hosts = hosts
        .map(|path| read_hosts(path, params.shards))
        .transpose()?;
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;

    let mut children: Vec<Child> = Vec::new();
    if let Some(hosts) = &hosts {
        println!(
            "awaiting {} externally started workers on {addr} (hosts: {})",
            params.shards,
            hosts
                .iter()
                .map(|(_, h)| h.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    } else {
        let exe = std::env::current_exe()?;
        for shard in 0..params.shards {
            let mut cmd = Command::new(&exe);
            cmd.args([
                "--worker",
                &shard.to_string(),
                "--connect",
                &addr.to_string(),
                "--n",
                &params.n.to_string(),
                "--shards",
                &params.shards.to_string(),
                "--graph",
                &params.graph,
                "--tail",
                &params.tail.to_string(),
                "--seed",
                &params.seed.to_string(),
            ]);
            if params.mesh {
                cmd.arg("--mesh");
            }
            if params.stats_every > 0 {
                cmd.args(["--stats-every", &params.stats_every.to_string()]);
            }
            if trace.is_some() {
                // Workers only need the *flag* — the path stays with the
                // coordinator, which assembles the merged file.  Any
                // non-empty value turns capture on.
                cmd.args(["--trace", "-"]);
            }
            children.push(cmd.stdin(Stdio::null()).spawn()?);
        }
    }

    // Links arrive in arbitrary order; `coordinate` sorts them out by the
    // shard index of each worker's initial vote.  The accept loop is
    // nonblocking so a worker that dies before connecting (bad args, OOM)
    // is reported instead of hanging the coordinator forever.
    listener.set_nonblocking(true)?;
    let mut links = Vec::with_capacity(params.shards);
    while links.len() < params.shards {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                links.push(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                for child in children.iter_mut() {
                    if let Some(status) = child.try_wait()? {
                        return Err(std::io::Error::other(format!(
                            "a worker process exited with {status} before connecting"
                        )));
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    listener.set_nonblocking(false)?;

    if params.mesh {
        mesh_handshake(params, &mut links)?;
    }

    let spec = transport::CoordinateSpec {
        num_nodes: params.n,
        shards: params.shards,
        max_rounds: params.max_rounds,
        mesh: params.mesh,
        progress,
    };
    let trace_sink = trace.map(|_| dcme_congest::ChromeTraceSink::new());
    let t = std::time::Instant::now();
    let outcome = transport::coordinate_traced::<u64, _>(links, &spec, trace_sink.as_ref());
    let wall = t.elapsed();
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(std::io::Error::other(format!(
                "a worker process exited with {status}"
            )));
        }
    }
    let mut outcome = outcome?;
    // Fold the coordinator's own high-water mark in (max-merge semantics).
    outcome.metrics.peak_rss_bytes = outcome
        .metrics
        .peak_rss_bytes
        .max(dcme_congest::process_peak_rss_bytes());

    let label = format!(
        "exp_worker/{}/n{}/shards{}/{}",
        params.graph,
        params.n,
        params.shards,
        if params.mesh { "mesh" } else { "relay" },
    );
    println!(
        "{label}: rounds={} messages={} cross_shard={} wire_bytes={} relayed_bytes={} \
         peak_rss_bytes={} flush_ms={:.2} wall_ms={:.0}",
        outcome.metrics.rounds,
        outcome.metrics.messages,
        outcome.metrics.cross_shard_messages,
        outcome.metrics.wire_bytes_sent,
        outcome.metrics.relayed_data_bytes,
        outcome.metrics.peak_rss_bytes,
        outcome.metrics.transport_flush_nanos as f64 / 1e6,
        wall.as_secs_f64() * 1e3,
    );
    if let Some(path) = jsonl {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        JsonLinesWriter::new(file).append(&label, &outcome.metrics)?;
    }
    if let (Some(path), Some(sink)) = (trace, &trace_sink) {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        sink.write_json(&mut file)?;
        println!(
            "trace: {} (engine track + {} worker tracks, load in Perfetto)",
            path.display(),
            params.shards,
        );
    }

    if verify {
        let g = workloads::build_graph(&params.graph, params.n, params.shards, params.seed)
            .map_err(std::io::Error::other)?;
        let reference = Simulator::with_config(
            &g,
            SimulatorConfig {
                max_rounds: params.max_rounds,
                ..SimulatorConfig::default()
            },
        )
        .run(workloads::gossip_nodes(0..params.n, params.tail));
        check_equal(&reference.metrics, &outcome.metrics)?;
        if reference.outputs != outcome.outputs {
            return Err(std::io::Error::other(
                "multi-process outputs diverged from the sequential executor",
            ));
        }
        println!("verify: OK (bit-for-bit vs sequential executor)");
    }
    Ok(())
}

/// The coordinator half of the mesh handshake: collect every worker's
/// announced listen address, validate the assembled peer list, then ship
/// each worker the shard plan and the full list.
fn mesh_handshake(params: &Params, links: &mut [TcpStream]) -> std::io::Result<()> {
    let shards = params.shards;
    let mut announced: Vec<Option<String>> = vec![None; shards];
    let mut link_shards: Vec<u16> = Vec::with_capacity(links.len());
    for link in links.iter_mut() {
        let frame = dcme_congest::wire::read_frame(link)?;
        let shard = frame.header.from;
        let entries = transport::parse_peers(&frame).map_err(std::io::Error::from)?;
        let slot = announced.get_mut(shard as usize).ok_or_else(|| {
            std::io::Error::other(format!(
                "mesh announce from shard {shard}, outside the run's {shards} shards"
            ))
        })?;
        match entries.as_slice() {
            [(s, addr)] if *s == shard && slot.is_none() => *slot = Some(addr.clone()),
            _ => {
                return Err(std::io::Error::other(format!(
                    "malformed mesh announce from shard {shard}"
                )))
            }
        }
        link_shards.push(shard);
    }
    let peer_list: Vec<(u16, String)> = announced
        .into_iter()
        .enumerate()
        .map(|(shard, addr)| {
            addr.map(|a| (shard as u16, a))
                .ok_or_else(|| std::io::Error::other(format!("shard {shard} never announced")))
        })
        .collect::<Result<_, _>>()?;
    transport::validate_peer_list(&peer_list, shards).map_err(std::io::Error::from)?;

    // The plan is the only piece of the topology the coordinator computes:
    // one counting pass over the edge stream, O(n) memory.
    let stream = workloads::graph_stream(&params.graph, params.n, params.seed)
        .map_err(std::io::Error::other)?;
    let plan = ShardPlan::from_edge_stream(params.n, shards, stream)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    for (link, &to) in links.iter_mut().zip(&link_shards) {
        transport::write_plan(link, &plan, to)?;
        transport::write_peers(link, transport::COORDINATOR, to, &peer_list)?;
    }
    Ok(())
}

fn check_equal(seq: &RunMetrics, multi: &RunMetrics) -> std::io::Result<()> {
    let pairs = [
        ("rounds", seq.rounds, multi.rounds),
        ("messages", seq.messages, multi.messages),
        ("total_bits", seq.total_bits, multi.total_bits),
        (
            "max_message_bits",
            seq.max_message_bits,
            multi.max_message_bits,
        ),
    ];
    for (name, a, b) in pairs {
        if a != b {
            return Err(std::io::Error::other(format!(
                "multi-process {name} diverged: sequential {a} vs multi-process {b}"
            )));
        }
    }
    if seq.active_per_round != multi.active_per_round {
        return Err(std::io::Error::other("active_per_round diverged"));
    }
    Ok(())
}
