//! Experiment binary: prints the e3_delta_sq table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e3_delta_sq [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e3_delta_squared(scale);
    println!("{}", table.to_markdown());
}
