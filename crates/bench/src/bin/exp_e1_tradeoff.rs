//! Experiment binary: prints the e1_tradeoff table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e1_tradeoff [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e1_tradeoff(scale);
    println!("{}", table.to_markdown());
}
