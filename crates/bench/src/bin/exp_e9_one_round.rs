//! Experiment binary: prints the e9_one_round table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e9_one_round [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e9_one_round(scale);
    println!("{}", table.to_markdown());
}
