//! Experiment binary: prints the EB table — the randomized baselines
//! (HNT ultrafast, D1LC degree+1) run with a fixed seed on every executor
//! and transport backend, with bit-exactness asserted before each row.
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_baselines_randomized
//! [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::eb_randomized_baselines(scale);
    println!("{}", table.to_markdown());
}
