//! Runs every experiment (E1-E12) and prints all tables; used to regenerate
//! the measured numbers in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_all [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    for table in dcme_bench::experiments::run_all(scale) {
        println!("{}", table.to_markdown());
    }
}
