//! Runs every experiment (E1-E12) and prints all tables; used to regenerate
//! the measured numbers in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_all [-- --full]
//! [-- --jsonl out.jsonl]` — with `--jsonl`, every table row is also
//! appended to the given file as a machine-readable JSON-lines record.

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let jsonl = dcme_bench::experiments::jsonl_path_from_args();
    let tables = dcme_bench::experiments::run_all(scale);
    for table in &tables {
        println!("{}", table.to_markdown());
    }
    if let Some(path) = jsonl {
        dcme_bench::experiments::append_tables_jsonl(&path, &tables).expect("append --jsonl rows");
        eprintln!("appended {} tables to {}", tables.len(), path.display());
    }
}
