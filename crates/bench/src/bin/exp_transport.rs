//! Experiment binary: prints the transport-backends table (ET) — the
//! sharded engine under in-process queues vs the wire-codec'd socket
//! loopback.  For the multi-process (one worker process per shard) backend,
//! see `exp_worker`.
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_transport [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::transport_backends(scale);
    println!("{}", table.to_markdown());
}
