//! Trace producer: runs one experiment config with the tracing sinks
//! attached and writes a Chrome trace-event JSON file (loadable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`) plus an
//! optional per-round time-series JSONL.
//!
//! The trace shows one process track per shard (plus pid 0 for the engine):
//! phase slices (`send` / `deliver` / `receive`), per-shard flush and drain
//! slices, an `active_nodes` counter track and per-shard traffic counters —
//! the round-by-round structure the paper's claims are about, which the
//! end-of-run aggregates of `RunMetrics` cannot show.
//!
//! Tracing is strictly out-of-band: the run's outputs and logical metrics
//! are bit-for-bit identical with and without the sinks (pinned by the
//! equivalence regression in `tests/executor_equivalence.rs`).
//!
//! ```sh
//! # A 4-shard socket run, traced:
//! cargo run -p dcme_bench --release --bin exp_trace -- \
//!     --n 2000 --shards 4 --mode socket --out trace.json --series rounds.jsonl
//! # then load trace.json in https://ui.perfetto.dev
//! ```

use std::io::Write;

use dcme_bench::workloads;
use dcme_congest::{
    ChromeTraceSink, Fanout, JsonLinesWriter, PooledExecutor, RoundSeries, SequentialExecutor,
    ShardedExecutor, Simulator, SimulatorConfig, SocketLoopback, TraceSink,
};

struct Args {
    n: usize,
    shards: usize,
    graph: String,
    tail: u64,
    seed: u64,
    max_rounds: u64,
    mode: String,
    out: std::path::PathBuf,
    series: Option<std::path::PathBuf>,
    label: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_trace [--n N] [--shards S] [--graph ring|circulant4] [--tail T] \
         [--seed SEED] [--max-rounds R] [--mode seq|pooled|sharded|socket|mesh] \
         [--out TRACE.json] [--series ROUNDS.jsonl] [--label LABEL]\n\
         \x20      --mode mesh runs the worker protocol in-process over TCP loopback\n\
         \x20      with the direct worker-to-worker data mesh, merging each worker's\n\
         \x20      shipped Trace frame into the engine track (one pid per worker)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 2000,
        shards: 4,
        graph: "circulant4".to_string(),
        tail: 8,
        seed: 7,
        max_rounds: 1_000_000,
        mode: "sharded".to_string(),
        out: "trace.json".into(),
        series: None,
        label: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--graph" => args.graph = value("--graph"),
            "--tail" => args.tail = value("--tail").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-rounds" => {
                args.max_rounds = value("--max-rounds").parse().unwrap_or_else(|_| usage())
            }
            "--mode" => args.mode = value("--mode"),
            "--out" => args.out = value("--out").into(),
            "--series" => args.series = Some(value("--series").into()),
            "--label" => args.label = Some(value("--label")),
            _ => usage(),
        }
    }
    if !matches!(
        args.mode.as_str(),
        "seq" | "pooled" | "sharded" | "socket" | "mesh"
    ) {
        eprintln!("unknown --mode {:?}", args.mode);
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("exp_trace: {e}");
        std::process::exit(1);
    }
}

/// The `mesh` mode: the full worker protocol run in-process — one thread
/// per shard serving over TCP loopback with the direct worker↔worker data
/// mesh, each shipping its captured trace as a final `Trace` frame that
/// [`dcme_congest::transport::coordinate_traced`] merges into the engine
/// track.  Returns the merged sink and the run outcome; the per-round
/// series is rebuilt afterwards by replaying the merged events.
fn run_mesh(args: &Args) -> std::io::Result<(ChromeTraceSink, dcme_congest::RunOutcome<u64>)> {
    use dcme_congest::{transport, ShardPlan, ShardSliceTopology, ShardTopologyView};
    use std::net::{TcpListener, TcpStream};

    let shards = args.shards;
    let stream =
        workloads::graph_stream(&args.graph, args.n, args.seed).map_err(std::io::Error::other)?;
    let plan = ShardPlan::from_edge_stream(args.n, shards, stream)
        .map_err(|e| std::io::Error::other(e.to_string()))?;

    // Bind every mesh listener before any worker dials, so the peer list
    // is complete up front and every dial lands in a live backlog.
    let listeners: Vec<TcpListener> = (0..shards)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let peer_list: Vec<(u16, String)> = listeners
        .iter()
        .enumerate()
        .map(|(s, l)| Ok((s as u16, l.local_addr()?.to_string())))
        .collect::<std::io::Result<_>>()?;
    let control = TcpListener::bind("127.0.0.1:0")?;
    let control_addr = control.local_addr()?;

    let chrome = ChromeTraceSink::new();
    let outcome = std::thread::scope(|scope| -> std::io::Result<_> {
        for (shard, listener) in listeners.into_iter().enumerate() {
            let plan = plan.clone();
            let peer_list = peer_list.clone();
            let (graph, n, tail) = (args.graph.clone(), args.n, args.tail);
            scope.spawn(move || -> std::io::Result<()> {
                let mut link = TcpStream::connect(control_addr)?;
                link.set_nodelay(true)?;
                let stream =
                    workloads::graph_stream(&graph, n, args.seed).map_err(std::io::Error::other)?;
                let slice = ShardSliceTopology::build(plan, shard, stream)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let mesh =
                    transport::WorkerMesh::connect(shard as u16, shards, &peer_list, &listener)?;
                let nodes = workloads::gossip_nodes(slice.shard_nodes(shard), tail);
                transport::serve_shard_with(
                    &mut link,
                    &slice,
                    shard,
                    nodes,
                    &mut transport::DataPlane::Mesh(mesh),
                    &transport::ServeOptions {
                        stats_every: 0,
                        trace: true,
                    },
                )
            });
        }
        let mut links = Vec::with_capacity(shards);
        while links.len() < shards {
            let (stream, _) = control.accept()?;
            stream.set_nodelay(true)?;
            links.push(stream);
        }
        let spec = transport::CoordinateSpec {
            num_nodes: args.n,
            shards,
            max_rounds: args.max_rounds,
            mesh: true,
            progress: false,
        };
        transport::coordinate_traced::<u64, _>(links, &spec, Some(&chrome))
    })?;
    Ok((chrome, outcome))
}

fn run(args: &Args) -> std::io::Result<()> {
    if args.mode == "mesh" {
        return run_and_report_mesh(args);
    }
    let g = workloads::build_graph(&args.graph, args.n, args.shards, args.seed)
        .map_err(std::io::Error::other)?;
    let nodes = workloads::gossip_nodes(0..args.n, args.tail);
    let label = args.label.clone().unwrap_or_else(|| {
        format!(
            "exp_trace/{}/n{}/shards{}/{}",
            args.graph, args.n, args.shards, args.mode
        )
    });

    let chrome = ChromeTraceSink::new();
    let series = RoundSeries::new();
    let sinks: [&dyn TraceSink; 2] = [&chrome, &series];
    let fanout = Fanout::new(&sinks);
    let sim = Simulator::with_config(
        &g,
        SimulatorConfig {
            max_rounds: args.max_rounds,
            ..SimulatorConfig::default()
        },
    )
    .with_tracer(&fanout);

    let t = std::time::Instant::now();
    let outcome = match args.mode.as_str() {
        "seq" => sim.run_with_executor(nodes, &SequentialExecutor),
        "pooled" => sim.run_with_executor(nodes, &PooledExecutor::new(args.shards.max(2))),
        "sharded" => sim.run_with_executor(nodes, &ShardedExecutor::new()),
        "socket" => sim.run_with_executor(
            nodes,
            &ShardedExecutor::with_transport(SocketLoopback::tcp()),
        ),
        _ => unreachable!("validated in parse_args"),
    };
    let wall = t.elapsed();

    let mut out = std::io::BufWriter::new(std::fs::File::create(&args.out)?);
    chrome.write_json(&mut out)?;
    out.flush()?;

    if let Some(path) = &args.series {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut w = JsonLinesWriter::new(file);
        // The RunMetrics row and the per-round rows side by side, same
        // label: the `"kind"` tag keeps the shapes distinguishable.
        w.append(&label, &outcome.metrics)?;
        series.write_jsonl(&label, &mut w)?;
    }

    let summary = series.summary();
    println!(
        "{label}: rounds={} messages={} trace_events={} round_nanos_p50={} p95={} max={} \
         wall_ms={:.0} -> {}",
        outcome.metrics.rounds,
        outcome.metrics.messages,
        chrome.len(),
        summary.p50_nanos,
        summary.p95_nanos,
        summary.max_nanos,
        wall.as_secs_f64() * 1e3,
        args.out.display(),
    );
    Ok(())
}

/// Drives [`run_mesh`], then writes the merged trace, rebuilds the
/// per-round series by replaying the merged events, and prints the same
/// summary line as the in-process modes.
fn run_and_report_mesh(args: &Args) -> std::io::Result<()> {
    let label = args.label.clone().unwrap_or_else(|| {
        format!(
            "exp_trace/{}/n{}/shards{}/mesh",
            args.graph, args.n, args.shards
        )
    });
    let t = std::time::Instant::now();
    let (chrome, outcome) = run_mesh(args)?;
    let wall = t.elapsed();

    let mut out = std::io::BufWriter::new(std::fs::File::create(&args.out)?);
    chrome.write_json(&mut out)?;
    out.flush()?;

    // The round series is rebuilt from the merged trace: the coordinator's
    // RoundStart/RoundEnd rows plus every worker's per-shard deltas, all
    // arriving through the same sink the in-process modes feed live.
    let series = RoundSeries::new();
    chrome.replay_into(&series);

    if let Some(path) = &args.series {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut w = JsonLinesWriter::new(file);
        w.append(&label, &outcome.metrics)?;
        series.write_jsonl(&label, &mut w)?;
    }

    let summary = series.summary();
    println!(
        "{label}: rounds={} messages={} trace_events={} round_nanos_p50={} p95={} max={} \
         wall_ms={:.0} -> {}",
        outcome.metrics.rounds,
        outcome.metrics.messages,
        chrome.len(),
        summary.p50_nanos,
        summary.p95_nanos,
        summary.max_nanos,
        wall.as_secs_f64() * 1e3,
        args.out.display(),
    );
    Ok(())
}
