//! Trace producer: runs one experiment config with the tracing sinks
//! attached and writes a Chrome trace-event JSON file (loadable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`) plus an
//! optional per-round time-series JSONL.
//!
//! The trace shows one process track per shard (plus pid 0 for the engine):
//! phase slices (`send` / `deliver` / `receive`), per-shard flush and drain
//! slices, an `active_nodes` counter track and per-shard traffic counters —
//! the round-by-round structure the paper's claims are about, which the
//! end-of-run aggregates of `RunMetrics` cannot show.
//!
//! Tracing is strictly out-of-band: the run's outputs and logical metrics
//! are bit-for-bit identical with and without the sinks (pinned by the
//! equivalence regression in `tests/executor_equivalence.rs`).
//!
//! ```sh
//! # A 4-shard socket run, traced:
//! cargo run -p dcme_bench --release --bin exp_trace -- \
//!     --n 2000 --shards 4 --mode socket --out trace.json --series rounds.jsonl
//! # then load trace.json in https://ui.perfetto.dev
//! ```

use std::io::Write;

use dcme_bench::workloads;
use dcme_congest::{
    ChromeTraceSink, Fanout, JsonLinesWriter, PooledExecutor, RoundSeries, SequentialExecutor,
    ShardedExecutor, Simulator, SimulatorConfig, SocketLoopback, TraceSink,
};

struct Args {
    n: usize,
    shards: usize,
    graph: String,
    tail: u64,
    seed: u64,
    max_rounds: u64,
    mode: String,
    out: std::path::PathBuf,
    series: Option<std::path::PathBuf>,
    label: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_trace [--n N] [--shards S] [--graph ring|circulant4] [--tail T] \
         [--seed SEED] [--max-rounds R] [--mode seq|pooled|sharded|socket] \
         [--out TRACE.json] [--series ROUNDS.jsonl] [--label LABEL]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 2000,
        shards: 4,
        graph: "circulant4".to_string(),
        tail: 8,
        seed: 7,
        max_rounds: 1_000_000,
        mode: "sharded".to_string(),
        out: "trace.json".into(),
        series: None,
        label: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--graph" => args.graph = value("--graph"),
            "--tail" => args.tail = value("--tail").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-rounds" => {
                args.max_rounds = value("--max-rounds").parse().unwrap_or_else(|_| usage())
            }
            "--mode" => args.mode = value("--mode"),
            "--out" => args.out = value("--out").into(),
            "--series" => args.series = Some(value("--series").into()),
            "--label" => args.label = Some(value("--label")),
            _ => usage(),
        }
    }
    if !matches!(args.mode.as_str(), "seq" | "pooled" | "sharded" | "socket") {
        eprintln!("unknown --mode {:?}", args.mode);
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("exp_trace: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> std::io::Result<()> {
    let g = workloads::build_graph(&args.graph, args.n, args.shards, args.seed)
        .map_err(std::io::Error::other)?;
    let nodes = workloads::gossip_nodes(0..args.n, args.tail);
    let label = args.label.clone().unwrap_or_else(|| {
        format!(
            "exp_trace/{}/n{}/shards{}/{}",
            args.graph, args.n, args.shards, args.mode
        )
    });

    let chrome = ChromeTraceSink::new();
    let series = RoundSeries::new();
    let sinks: [&dyn TraceSink; 2] = [&chrome, &series];
    let fanout = Fanout::new(&sinks);
    let sim = Simulator::with_config(
        &g,
        SimulatorConfig {
            max_rounds: args.max_rounds,
            ..SimulatorConfig::default()
        },
    )
    .with_tracer(&fanout);

    let t = std::time::Instant::now();
    let outcome = match args.mode.as_str() {
        "seq" => sim.run_with_executor(nodes, &SequentialExecutor),
        "pooled" => sim.run_with_executor(nodes, &PooledExecutor::new(args.shards.max(2))),
        "sharded" => sim.run_with_executor(nodes, &ShardedExecutor::new()),
        "socket" => sim.run_with_executor(
            nodes,
            &ShardedExecutor::with_transport(SocketLoopback::tcp()),
        ),
        _ => unreachable!("validated in parse_args"),
    };
    let wall = t.elapsed();

    let mut out = std::io::BufWriter::new(std::fs::File::create(&args.out)?);
    chrome.write_json(&mut out)?;
    out.flush()?;

    if let Some(path) = &args.series {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut w = JsonLinesWriter::new(file);
        // The RunMetrics row and the per-round rows side by side, same
        // label: the `"kind"` tag keeps the shapes distinguishable.
        w.append(&label, &outcome.metrics)?;
        series.write_jsonl(&label, &mut w)?;
    }

    let summary = series.summary();
    println!(
        "{label}: rounds={} messages={} trace_events={} round_nanos_p50={} p95={} max={} \
         wall_ms={:.0} -> {}",
        outcome.metrics.rounds,
        outcome.metrics.messages,
        chrome.len(),
        summary.p50_nanos,
        summary.p95_nanos,
        summary.max_nanos,
        wall.as_secs_f64() * 1e3,
        args.out.display(),
    );
    Ok(())
}
