//! Experiment binary: prints the fault-injection table (EF) — invariant
//! survival of every algorithm under every fault class — and replays
//! recorded fault plans.
//!
//! Usage:
//!
//! * `cargo run -p dcme_bench --release --bin exp_faults [-- --full]
//!   [-- --jsonl out.jsonl]` — run the matrix; with `--jsonl`, every row is
//!   also appended as a machine-readable JSON-lines record.
//! * `FAULTS_SMOKE=1 cargo run -p dcme_bench --bin exp_faults` — the CI
//!   smoke: quick scale, and the run fails loudly if the matrix misses a
//!   row or the unprotected fixture fails to break.
//! * `cargo run -p dcme_bench --bin exp_faults -- --replay '<plan-spec>'` —
//!   re-run the unprotected greedy fixture under a recorded plan spec (the
//!   `plan` column of any EF row, e.g.
//!   `seed=42;drop=150;dup=0;retransmit=0`) and print the fault event log
//!   and the verdict.  Identical specs print identical logs.

use dcme_bench::experiments;
use dcme_congest::faults::{check_coloring, render_log, run_faulty, FaultPlan};
use dcme_congest::mc::fixtures::GreedyUnprotected;
use dcme_congest::{InProcess, ShardedTopology};
use dcme_graphs::generators;

fn replay_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--replay" {
            return args.next();
        }
    }
    None
}

fn replay(spec: &str) {
    let plan = FaultPlan::from_spec(spec).expect("--replay takes a FaultPlan spec");
    let n = 12;
    let g = generators::ring(n);
    let sharded = ShardedTopology::from_topology(&g, n).expect("replay graph");
    let run = run_faulty(
        &sharded,
        vec![GreedyUnprotected::new(); n],
        &plan,
        InProcess,
        64,
    );
    println!("# replaying {spec} on ring({n}), one node per shard");
    print!("{}", render_log(&run.events));
    match check_coloring(&sharded, &run.outcome.outputs, true) {
        None => println!("verdict: holds"),
        Some(v) => println!("verdict: violated: {v}"),
    }
}

fn main() {
    if let Some(spec) = replay_arg() {
        replay(&spec);
        return;
    }
    let smoke = std::env::var("FAULTS_SMOKE").is_ok_and(|v| v == "1");
    let scale = if smoke {
        experiments::Scale::Quick
    } else {
        experiments::scale_from_args()
    };
    let table = experiments::ef_fault_injection(scale);
    println!("{}", table.to_markdown());
    if let Some(path) = experiments::jsonl_path_from_args() {
        experiments::append_tables_jsonl(&path, std::slice::from_ref(&table))
            .expect("append --jsonl rows");
    }
    if smoke {
        assert_eq!(table.rows.len(), 6 * 5, "EF matrix lost rows");
        assert!(
            table
                .rows
                .iter()
                .any(|r| r[0] == "greedy-unprotected" && r[3].starts_with("violated")),
            "smoke: the unprotected fixture must break under some fault class"
        );
        // Partition windows defer traffic even when retransmitting — that
        // is reordering, so only the fault-free rows, the masking class
        // and the async-tolerant fixture are guaranteed to hold.
        assert!(
            table
                .rows
                .iter()
                .filter(|r| r[1] == "none" || r[1] == "drop+retransmit" || r[0] == "greedy-robust")
                .all(|r| r[3] == "holds"),
            "smoke: fault-free / masked / hardened rows must hold invariants"
        );
        eprintln!("FAULTS_SMOKE ok: {} rows", table.rows.len());
    }
}
