//! Experiment binary: prints the e11_logstar table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e11_logstar [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e11_logstar(scale);
    println!("{}", table.to_markdown());
}
