//! Experiment binary: prints the e5_defective table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e5_defective [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e5_defective(scale);
    println!("{}", table.to_markdown());
}
