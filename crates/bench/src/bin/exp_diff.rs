//! The run-diff tool: compares two JSONL experiment files
//! ([`dcme_congest::RunMetrics`] rows plus `"kind":"round_series"` rows,
//! matched by label) and renders the per-counter / per-round markdown
//! report of [`dcme_bench::diff`] — with `--check`, exits nonzero on any
//! regression, which is the CI gate against the committed
//! `baselines/metrics-baseline.jsonl`.
//!
//! Deterministic counters gate exactly by default (they are bit-pinned by
//! the executor-equivalence guarantee, so the committed baseline holds on
//! any machine); scheduling-dependent counters (`syscall_batches`,
//! `peak_rss_bytes`, timings) are reported but only gate with
//! `--gate-noisy`.  See the gate-class table in `dcme_bench::diff`.
//!
//! ```sh
//! # Capture a candidate and gate it against the committed baseline:
//! DCME_METRICS_JSONL=/tmp/candidate.jsonl cargo bench -p dcme_bench ...
//! cargo run -p dcme_bench --bin exp_diff -- \
//!     baselines/metrics-baseline.jsonl /tmp/candidate.jsonl --check
//! ```

use dcme_bench::diff::{diff, RunFile, Tolerance};

struct Args {
    before: std::path::PathBuf,
    after: std::path::PathBuf,
    check: bool,
    tolerance: Tolerance,
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_diff BASELINE.jsonl CANDIDATE.jsonl [--check] [--tolerance PCT] \
         [--gate-noisy PCT]\n\
         \x20      --check        exit 1 if any gated counter regressed\n\
         \x20      --tolerance    allowed % increase on deterministic counters (default 0)\n\
         \x20      --gate-noisy   also gate machine-dependent counters, with this % slack"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut files = Vec::new();
    let mut check = false;
    let mut tolerance = Tolerance::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut pct = |name: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|p| *p >= 0.0)
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a non-negative percentage");
                    usage()
                })
                / 100.0
        };
        match flag.as_str() {
            "--check" => check = true,
            "--tolerance" => tolerance.counters = pct("--tolerance"),
            "--gate-noisy" => {
                tolerance.gate_noisy = true;
                tolerance.noisy = pct("--gate-noisy");
            }
            f if f.starts_with("--") => usage(),
            _ => files.push(std::path::PathBuf::from(flag)),
        }
    }
    let [before, after] = <[_; 2]>::try_from(files).unwrap_or_else(|_| usage());
    Args {
        before,
        after,
        check,
        tolerance,
    }
}

fn main() {
    let args = parse_args();
    let load = |path: &std::path::Path| -> RunFile {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("exp_diff: {}: {e}", path.display());
            std::process::exit(1);
        });
        RunFile::parse(&text).unwrap_or_else(|e| {
            eprintln!("exp_diff: {}: {e}", path.display());
            std::process::exit(1);
        })
    };
    let report = diff(&load(&args.before), &load(&args.after), &args.tolerance);
    print!("{}", report.to_markdown());
    if args.check {
        if report.regressed() {
            eprintln!("check: REGRESSED");
            std::process::exit(1);
        }
        eprintln!("check: OK");
    }
}
