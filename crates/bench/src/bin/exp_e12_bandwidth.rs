//! Experiment binary: prints the e12_bandwidth table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e12_bandwidth [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e12_bandwidth(scale);
    println!("{}", table.to_markdown());
}
