//! Experiment binary: prints the e10_chopping table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e10_chopping [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e10_chopping(scale);
    println!("{}", table.to_markdown());
}
