//! Experiment binary: prints the e7_fast table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e7_fast [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e7_fast(scale);
    println!("{}", table.to_markdown());
}
