//! Engine-level benchmark workloads shared by the `engine_*` benches, the
//! transport experiment and the multi-process `exp_worker` binary.
//!
//! Every runner here must be a **deterministic function of the node id and
//! its parameters**: the multi-process backend constructs the same workload
//! independently in every worker process, so any hidden state would break
//! the bit-for-bit equivalence the transport tests assert.

use dcme_congest::{Inbox, NodeAlgorithm, NodeContext, Outbox, ShardedTopology};
use dcme_graphs::streaming;

/// Gossip with staggered halts (the `engine_scaling` / `engine_sharding`
/// workload): node `v` broadcasts its id every round and halts after
/// `ttl(v)` rounds, where most nodes get a small ttl and every 97th node
/// keeps going for `tail` rounds — so the active set drains raggedly across
/// shard boundaries.
#[derive(Debug, Clone)]
pub struct StaggeredGossip {
    id: u64,
    ttl: u64,
    tail: u64,
    heard: u64,
    rounds_done: u64,
}

impl StaggeredGossip {
    /// A node that will run for `tail` rounds if it is a long-tail node.
    pub fn new(tail: u64) -> Self {
        Self {
            id: 0,
            ttl: 0,
            tail,
            heard: 0,
            rounds_done: 0,
        }
    }
}

impl NodeAlgorithm for StaggeredGossip {
    type Message = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeContext) {
        self.id = ctx.node as u64;
        self.ttl = if ctx.node % 97 == 0 {
            self.tail
        } else {
            2 + (self.id % 7)
        };
    }

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
        Outbox::Broadcast(self.id)
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
        for (_, m) in inbox.iter() {
            self.heard = self.heard.wrapping_add(*m);
        }
        self.rounds_done += 1;
    }

    fn is_halted(&self) -> bool {
        self.rounds_done >= self.ttl
    }

    fn output(&self) -> u64 {
        self.heard
    }
}

/// The graph families of the `engine_sharding` / `engine_transport` benches,
/// built shard-by-shard with the streaming constructors.
///
/// `name` is `"ring"` or `"circulant4"` (a random 4-regular circulant,
/// seeded with `seed`); anything else is an error the caller reports.
pub fn build_graph(
    name: &str,
    n: usize,
    shards: usize,
    seed: u64,
) -> Result<ShardedTopology, String> {
    let stream = graph_stream(name, n, seed)?;
    ShardedTopology::from_edge_stream(n, shards, stream).map_err(|e| e.to_string())
}

/// A boxed edge stream: calling it walks the family's edge list, and every
/// call emits the identical sequence (so multi-pass builds can replay it).
pub type EdgeStream = Box<dyn FnMut(&mut dyn FnMut(usize, usize))>;

/// The replayable edge stream of a named graph family — the primitive both
/// [`build_graph`] and the scale-out workers share.
///
/// A mesh-mode worker replays this stream against the coordinator's
/// [`ShardPlan`](dcme_congest::ShardPlan) to build only its own
/// [`ShardSliceTopology`](dcme_congest::ShardSliceTopology); because every
/// process derives the identical stream from `(name, n, seed)`, the slices
/// agree bit-for-bit with a full single-process build.
pub fn graph_stream(name: &str, n: usize, seed: u64) -> Result<EdgeStream, String> {
    match name {
        "ring" => Ok(Box::new(streaming::ring_stream(n))),
        "circulant4" => Ok(Box::new(streaming::random_regular_stream(n, 4, seed))),
        other => Err(format!(
            "unknown graph family {other:?} (expected \"ring\" or \"circulant4\")"
        )),
    }
}

/// Instantiates the gossip workload for a node range (the whole graph for
/// in-process runs, one shard's range for a worker process).
pub fn gossip_nodes(range: core::ops::Range<usize>, tail: u64) -> Vec<StaggeredGossip> {
    range.map(|_| StaggeredGossip::new(tail)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_congest::TopologyView;

    #[test]
    fn graph_families_build_and_reject_unknown_names() {
        let g = build_graph("ring", 12, 2, 0).unwrap();
        assert_eq!(g.num_nodes(), 12);
        let g = build_graph("circulant4", 40, 3, 7).unwrap();
        assert_eq!(g.num_nodes(), 40);
        assert!(build_graph("torus", 10, 2, 0).is_err());
        assert!(graph_stream("torus", 10, 0).is_err());
    }

    /// The worker-side restricted build over a named stream reproduces the
    /// full build's shard slices exactly — the invariant mesh mode rests on.
    #[test]
    fn graph_streams_rebuild_identical_shard_slices() {
        for name in ["ring", "circulant4"] {
            let full = build_graph(name, 40, 3, 7).unwrap();
            let plan = full.plan();
            for shard in 0..3 {
                let slice = dcme_congest::ShardSliceTopology::build(
                    plan.clone(),
                    shard,
                    graph_stream(name, 40, 7).unwrap(),
                )
                .unwrap();
                assert_eq!(slice, full.shard_slice(shard));
            }
        }
    }
}
