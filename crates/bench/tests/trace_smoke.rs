//! End-to-end smoke of the tracing subsystem: `exp_trace` must emit
//! well-formed Chrome trace-event JSON (one process track per shard,
//! nonzero phase slices) plus per-round series rows that parse back
//! field-for-field, and a `--progress` multi-process `exp_worker` run must
//! render worker heartbeat lines on stderr.

use std::process::Command;

use dcme_congest::{JsonValue, RoundRow, RunMetrics};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dcme_trace_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn exp_trace_emits_wellformed_chrome_trace_json() {
    let dir = tmp_dir("chrome");
    let trace = dir.join("trace.json");
    let shards = 3;
    let out = Command::new(env!("CARGO_BIN_EXE_exp_trace"))
        .args([
            "--n",
            "600",
            "--shards",
            &shards.to_string(),
            "--graph",
            "circulant4",
            "--tail",
            "6",
            "--mode",
            "sharded",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn exp_trace");
    assert!(
        out.status.success(),
        "exp_trace failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = JsonValue::parse(&text).expect("trace file must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("top-level traceEvents array");
    assert!(!events.is_empty(), "empty trace");

    let mut pids = std::collections::BTreeSet::new();
    let mut named_tracks = std::collections::BTreeSet::new();
    let mut nonzero_slices = 0usize;
    for ev in events {
        // Every event carries the Chrome trace-event required fields.
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph field");
        assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some(), "ts field");
        let pid = ev.get("pid").and_then(|p| p.as_u64()).expect("pid field");
        pids.insert(pid);
        if ph == "M" {
            named_tracks.insert(pid);
        }
        if ph == "X" && ev.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0) > 0.0 {
            nonzero_slices += 1;
        }
    }
    // One track per shard plus the engine track, each with process_name
    // metadata so Perfetto labels them.
    let expected: std::collections::BTreeSet<u64> = (0..=shards).collect();
    assert_eq!(pids, expected, "one pid per shard plus the engine");
    assert_eq!(named_tracks, expected, "every track is named");
    assert!(
        nonzero_slices > 0,
        "trace must contain nonzero-duration phase slices"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exp_trace_series_rows_round_trip() {
    let dir = tmp_dir("series");
    let trace = dir.join("trace.json");
    let series = dir.join("rounds.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_exp_trace"))
        .args([
            "--n",
            "400",
            "--shards",
            "2",
            "--graph",
            "ring",
            "--tail",
            "5",
            "--mode",
            "seq",
            "--out",
            trace.to_str().unwrap(),
            "--series",
            series.to_str().unwrap(),
            "--label",
            "smoke",
        ])
        .output()
        .expect("spawn exp_trace");
    assert!(
        out.status.success(),
        "exp_trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&series).unwrap();
    let mut lines = text.lines();
    // First row: the RunMetrics line. Parsing it back and re-serializing
    // must reproduce the emitted line byte for byte — field-for-field
    // round-trip of the whole schema.
    let metrics_line = lines.next().expect("metrics row");
    let (label, metrics) = RunMetrics::from_json(metrics_line).expect("parse metrics row");
    assert_eq!(label, "smoke");
    assert_eq!(metrics.to_json(&label), metrics_line, "metrics round-trip");

    // Remaining rows: one per round, in order, consistent with the
    // engine's own active-set profile — and round-tripping likewise.
    let rows: Vec<(String, RoundRow)> = lines
        .map(|line| RoundRow::from_json(line).expect("parse series row"))
        .collect();
    assert_eq!(rows.len() as u64, metrics.rounds, "one row per round");
    let mut messages = 0;
    for (i, (row_label, row)) in rows.iter().enumerate() {
        assert_eq!(row_label, "smoke");
        assert_eq!(row.round, i as u64);
        assert_eq!(
            row.active as usize, metrics.active_per_round[i],
            "active-set mismatch at round {i}"
        );
        assert_eq!(row.to_json(row_label), text.lines().nth(i + 1).unwrap());
        messages += row.messages;
    }
    assert_eq!(messages, metrics.messages, "per-round messages must sum up");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_coordinator_renders_worker_heartbeats() {
    let out = Command::new(env!("CARGO_BIN_EXE_exp_worker"))
        .args([
            "--n",
            "600",
            "--shards",
            "2",
            "--graph",
            "circulant4",
            "--tail",
            "7",
            "--progress",
            "--stats-every",
            "1",
            "--verify",
        ])
        .output()
        .expect("spawn exp_worker");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "exp_worker --progress failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    // Telemetry is out-of-band: the run still verifies bit-for-bit.
    assert!(stdout.contains("verify: OK"), "missing verify in: {stdout}");
    for shard in 0..2 {
        assert!(
            stderr.contains(&format!("heartbeat: shard {shard} ")),
            "missing shard {shard} heartbeat in stderr: {stderr}"
        );
    }
    assert!(
        stderr.contains("rounds/s"),
        "heartbeat lines must carry a round rate: {stderr}"
    );
}
