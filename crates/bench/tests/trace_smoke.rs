//! End-to-end smoke of the tracing subsystem: `exp_trace` must emit
//! well-formed Chrome trace-event JSON (one process track per shard,
//! nonzero phase slices) plus per-round series rows that parse back
//! field-for-field, a `--progress` multi-process `exp_worker` run must
//! render worker heartbeat lines on stderr, and a `--trace` run must
//! merge every worker's shipped Trace frame into one Perfetto-loadable
//! file — in relay and mesh modes, without perturbing `--verify`.

use std::process::Command;

use dcme_congest::{JsonValue, RoundRow, RunMetrics};

/// Parses a Chrome trace file and returns, per pid: is it named, how many
/// nonzero-duration slices it has, and how many `worker_start` instants
/// and `"fault"`-category instants the whole file carries.
struct TraceShape {
    named_pids: std::collections::BTreeSet<u64>,
    pids: std::collections::BTreeSet<u64>,
    nonzero_slices_by_pid: std::collections::BTreeMap<u64, usize>,
    worker_starts: usize,
    fault_instants: usize,
}

fn trace_shape(text: &str) -> TraceShape {
    let doc = JsonValue::parse(text).expect("trace file must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("top-level traceEvents array");
    let mut shape = TraceShape {
        named_pids: Default::default(),
        pids: Default::default(),
        nonzero_slices_by_pid: Default::default(),
        worker_starts: 0,
        fault_instants: 0,
    };
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph field");
        assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some(), "ts field");
        let pid = ev.get("pid").and_then(|p| p.as_u64()).expect("pid field");
        shape.pids.insert(pid);
        if ph == "M" {
            shape.named_pids.insert(pid);
        }
        if ph == "X" && ev.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0) > 0.0 {
            *shape.nonzero_slices_by_pid.entry(pid).or_default() += 1;
        }
        if ev.get("name").and_then(|n| n.as_str()) == Some("worker_start") {
            shape.worker_starts += 1;
        }
        if ev.get("cat").and_then(|c| c.as_str()) == Some("fault") {
            shape.fault_instants += 1;
        }
    }
    shape
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dcme_trace_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn exp_trace_emits_wellformed_chrome_trace_json() {
    let dir = tmp_dir("chrome");
    let trace = dir.join("trace.json");
    let shards = 3;
    let out = Command::new(env!("CARGO_BIN_EXE_exp_trace"))
        .args([
            "--n",
            "600",
            "--shards",
            &shards.to_string(),
            "--graph",
            "circulant4",
            "--tail",
            "6",
            "--mode",
            "sharded",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn exp_trace");
    assert!(
        out.status.success(),
        "exp_trace failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = JsonValue::parse(&text).expect("trace file must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("top-level traceEvents array");
    assert!(!events.is_empty(), "empty trace");

    let mut pids = std::collections::BTreeSet::new();
    let mut named_tracks = std::collections::BTreeSet::new();
    let mut nonzero_slices = 0usize;
    for ev in events {
        // Every event carries the Chrome trace-event required fields.
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph field");
        assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some(), "ts field");
        let pid = ev.get("pid").and_then(|p| p.as_u64()).expect("pid field");
        pids.insert(pid);
        if ph == "M" {
            named_tracks.insert(pid);
        }
        if ph == "X" && ev.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0) > 0.0 {
            nonzero_slices += 1;
        }
    }
    // One track per shard plus the engine track, each with process_name
    // metadata so Perfetto labels them.
    let expected: std::collections::BTreeSet<u64> = (0..=shards).collect();
    assert_eq!(pids, expected, "one pid per shard plus the engine");
    assert_eq!(named_tracks, expected, "every track is named");
    assert!(
        nonzero_slices > 0,
        "trace must contain nonzero-duration phase slices"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exp_trace_series_rows_round_trip() {
    let dir = tmp_dir("series");
    let trace = dir.join("trace.json");
    let series = dir.join("rounds.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_exp_trace"))
        .args([
            "--n",
            "400",
            "--shards",
            "2",
            "--graph",
            "ring",
            "--tail",
            "5",
            "--mode",
            "seq",
            "--out",
            trace.to_str().unwrap(),
            "--series",
            series.to_str().unwrap(),
            "--label",
            "smoke",
        ])
        .output()
        .expect("spawn exp_trace");
    assert!(
        out.status.success(),
        "exp_trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&series).unwrap();
    let mut lines = text.lines();
    // First row: the RunMetrics line. Parsing it back and re-serializing
    // must reproduce the emitted line byte for byte — field-for-field
    // round-trip of the whole schema.
    let metrics_line = lines.next().expect("metrics row");
    let (label, metrics) = RunMetrics::from_json(metrics_line).expect("parse metrics row");
    assert_eq!(label, "smoke");
    assert_eq!(metrics.to_json(&label), metrics_line, "metrics round-trip");

    // Remaining rows: one per round, in order, consistent with the
    // engine's own active-set profile — and round-tripping likewise.
    let rows: Vec<(String, RoundRow)> = lines
        .map(|line| RoundRow::from_json(line).expect("parse series row"))
        .collect();
    assert_eq!(rows.len() as u64, metrics.rounds, "one row per round");
    let mut messages = 0;
    for (i, (row_label, row)) in rows.iter().enumerate() {
        assert_eq!(row_label, "smoke");
        assert_eq!(row.round, i as u64);
        assert_eq!(
            row.active as usize, metrics.active_per_round[i],
            "active-set mismatch at round {i}"
        );
        assert_eq!(row.to_json(row_label), text.lines().nth(i + 1).unwrap());
        messages += row.messages;
    }
    assert_eq!(messages, metrics.messages, "per-round messages must sum up");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_coordinator_renders_worker_heartbeats() {
    let out = Command::new(env!("CARGO_BIN_EXE_exp_worker"))
        .args([
            "--n",
            "600",
            "--shards",
            "2",
            "--graph",
            "circulant4",
            "--tail",
            "7",
            "--progress",
            "--stats-every",
            "1",
            "--verify",
        ])
        .output()
        .expect("spawn exp_worker");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "exp_worker --progress failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    // Telemetry is out-of-band: the run still verifies bit-for-bit.
    assert!(stdout.contains("verify: OK"), "missing verify in: {stdout}");
    for shard in 0..2 {
        assert!(
            stderr.contains(&format!("heartbeat: shard {shard} ")),
            "missing shard {shard} heartbeat in stderr: {stderr}"
        );
    }
    assert!(
        stderr.contains("rounds/s"),
        "heartbeat lines must carry a round rate: {stderr}"
    );
}

/// The remote trace capture end to end: a multi-process `exp_worker
/// --trace` run — relay and mesh — produces one merged Chrome trace with
/// the engine track plus one named, slice-bearing track per worker
/// process, while the run itself still verifies bit-for-bit against the
/// sequential executor.
#[test]
fn exp_worker_trace_merges_one_track_per_worker_process() {
    let dir = tmp_dir("remote");
    let shards = 2u64;
    for mesh in [false, true] {
        let mode = if mesh { "mesh" } else { "relay" };
        let trace = dir.join(format!("{mode}.trace.json"));
        let mut args = vec![
            "--n".to_string(),
            "600".to_string(),
            "--shards".to_string(),
            shards.to_string(),
            "--graph".to_string(),
            "circulant4".to_string(),
            "--tail".to_string(),
            "6".to_string(),
            "--verify".to_string(),
            "--trace".to_string(),
            trace.to_str().unwrap().to_string(),
        ];
        if mesh {
            args.push("--mesh".to_string());
        }
        let out = Command::new(env!("CARGO_BIN_EXE_exp_worker"))
            .args(&args)
            .output()
            .expect("spawn exp_worker");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "exp_worker --trace ({mode}) failed\nstdout: {stdout}\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Tracing is out-of-band: the traced run still verifies.
        assert!(stdout.contains("verify: OK"), "missing verify in: {stdout}");

        let shape = trace_shape(&std::fs::read_to_string(&trace).unwrap());
        let expected: std::collections::BTreeSet<u64> = (0..=shards).collect();
        assert_eq!(
            shape.pids, expected,
            "{mode}: engine pid plus one pid per worker"
        );
        assert_eq!(shape.named_pids, expected, "{mode}: every track is named");
        assert_eq!(
            shape.worker_starts, shards as usize,
            "{mode}: one worker_start per shipped worker blob"
        );
        for worker_pid in 1..=shards {
            assert!(
                shape
                    .nonzero_slices_by_pid
                    .get(&worker_pid)
                    .copied()
                    .unwrap_or(0)
                    > 0,
                "{mode}: worker pid {worker_pid} has no nonzero-duration slices"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault instants survive the same merge path remote traces use: a seeded
/// [`dcme_congest::FaultyTransport`] run captured with a
/// [`dcme_congest::StampedRecorder`], shipped through the stamped codec
/// and ingested into a [`dcme_congest::ChromeTraceSink`], renders
/// `"cat":"fault"` instants on the faulting shard's track.
#[test]
fn fault_instants_survive_the_stamped_merge_path() {
    use dcme_bench::workloads;
    use dcme_congest::{
        decode_stamped, encode_stamped, ChromeTraceSink, DeliveryMode, FaultPlan, FaultyTransport,
        InProcess, RoundSeries, ShardedExecutor, Simulator, SimulatorConfig,
    };
    use std::sync::Arc;

    let n = 400;
    let shards = 2;
    let g = workloads::build_graph("circulant4", n, shards, 7).expect("graph");
    let recorder = Arc::new(dcme_congest::StampedRecorder::new());
    let plan = FaultPlan::none(11).with_drop(80).with_retransmission();
    let builder = FaultyTransport::new(plan, InProcess).with_tracer(recorder.clone());
    Simulator::with_config(
        &g,
        SimulatorConfig {
            max_rounds: 1_000_000,
            ..SimulatorConfig::default()
        },
    )
    .run_with_executor(
        workloads::gossip_nodes(0..n, 6),
        &ShardedExecutor::with_transport(builder).with_delivery(DeliveryMode::Async),
    );

    let stamped = recorder.take();
    assert!(!stamped.is_empty(), "the tracer recorded no fault events");
    // The same wire blob a remote worker would ship, then the same merge.
    let decoded = decode_stamped(&encode_stamped(&stamped)).expect("codec round-trip");
    assert_eq!(decoded, stamped, "stamped events survive the codec");
    let chrome = ChromeTraceSink::new();
    chrome.ingest_stamped(&decoded);
    let mut buf = Vec::new();
    chrome.write_json(&mut buf).expect("render merged trace");
    let shape = trace_shape(&String::from_utf8(buf).expect("utf8 trace"));
    assert!(
        shape.fault_instants > 0,
        "merged trace carries no fault instants"
    );
    // The fault binning reaches the per-round series through replay, too.
    let series = RoundSeries::new();
    chrome.replay_into(&series);
    let faults: u64 = series
        .rows()
        .iter()
        .map(|r| r.dropped + r.retransmitted)
        .sum();
    assert!(faults > 0, "replayed series rows carry no fault counts");
}
