//! End-to-end smoke of the multi-process transport backend: the
//! coordinator-mode `exp_worker` binary spawns one worker **process** per
//! shard, runs a full simulation over TCP with wire-encoded cross-shard
//! frames, and `--verify` asserts the outcome bit for bit against the
//! in-process sequential executor.

use std::process::Command;

fn run_exp_worker(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_exp_worker"))
        .args(args)
        .output()
        .expect("spawn exp_worker")
}

#[test]
fn coordinator_and_worker_processes_agree_with_sequential() {
    let out = run_exp_worker(&[
        "--n",
        "2000",
        "--shards",
        "2",
        "--graph",
        "circulant4",
        "--tail",
        "7",
        "--verify",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "exp_worker failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("verify: OK"),
        "missing verification line in: {stdout}"
    );
    assert!(
        stdout.contains("wire_bytes="),
        "missing counters in: {stdout}"
    );
    // A 2-shard circulant must have pushed real bytes across the processes.
    assert!(
        !stdout.contains("wire_bytes=0 "),
        "no wire bytes crossed: {stdout}"
    );
}

#[test]
fn single_shard_multiprocess_run_works() {
    // Degenerate but legal: one worker process, no cross-shard traffic.
    let out = run_exp_worker(&[
        "--n", "300", "--shards", "1", "--graph", "ring", "--tail", "5", "--verify",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verify: OK"));
}

#[test]
fn unknown_graph_family_is_a_clean_error() {
    let out = run_exp_worker(&["--n", "100", "--shards", "2", "--graph", "torus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown graph family"));
}
