//! End-to-end smoke of the multi-process transport backend: the
//! coordinator-mode `exp_worker` binary spawns one worker **process** per
//! shard, runs a full simulation over TCP with wire-encoded cross-shard
//! frames, and `--verify` asserts the outcome bit for bit against the
//! in-process sequential executor.

use std::process::Command;

fn run_exp_worker(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_exp_worker"))
        .args(args)
        .output()
        .expect("spawn exp_worker")
}

#[test]
fn coordinator_and_worker_processes_agree_with_sequential() {
    let out = run_exp_worker(&[
        "--n",
        "2000",
        "--shards",
        "2",
        "--graph",
        "circulant4",
        "--tail",
        "7",
        "--verify",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "exp_worker failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("verify: OK"),
        "missing verification line in: {stdout}"
    );
    assert!(
        stdout.contains("wire_bytes="),
        "missing counters in: {stdout}"
    );
    // A 2-shard circulant must have pushed real bytes across the processes.
    assert!(
        !stdout.contains("wire_bytes=0 "),
        "no wire bytes crossed: {stdout}"
    );
}

#[test]
fn single_shard_multiprocess_run_works() {
    // Degenerate but legal: one worker process, no cross-shard traffic.
    let out = run_exp_worker(&[
        "--n", "300", "--shards", "1", "--graph", "ring", "--tail", "5", "--verify",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verify: OK"));
}

#[test]
fn mesh_mode_agrees_with_sequential_and_relays_nothing() {
    let out = run_exp_worker(&[
        "--n",
        "2000",
        "--shards",
        "3",
        "--graph",
        "circulant4",
        "--tail",
        "7",
        "--mesh",
        "--verify",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "exp_worker --mesh failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("verify: OK"),
        "missing verification line in: {stdout}"
    );
    // Data frames travel worker↔worker: the coordinator forwards none.
    assert!(
        stdout.contains("relayed_bytes=0 "),
        "mesh mode relayed data through the coordinator: {stdout}"
    );
    assert!(
        !stdout.contains("wire_bytes=0 "),
        "no wire bytes crossed the mesh: {stdout}"
    );
    // Each worker process reports its own high-water RSS via its Output frame.
    assert!(
        !stdout.contains("peak_rss_bytes=0 "),
        "missing peak RSS in: {stdout}"
    );
}

#[test]
fn host_list_shard_count_mismatch_is_a_clean_error_not_a_hang() {
    // Two hosts listed, three shards requested: the coordinator must fail
    // up front with the transport's typed validation error instead of
    // binding a listener and waiting forever for a third worker.
    let dir = std::env::temp_dir().join(format!("dcme_hosts_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let hosts = dir.join("hosts.txt");
    std::fs::write(&hosts, "# shard order\n127.0.0.1:9001\n127.0.0.1:9002\n").unwrap();
    let out = run_exp_worker(&[
        "--n",
        "300",
        "--shards",
        "3",
        "--graph",
        "ring",
        "--mesh",
        "--hosts",
        hosts.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(
        stderr.contains("names 2 workers but the run has 3 shards"),
        "expected the peer-list validation error, got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hosts_without_mesh_is_a_usage_error() {
    // `--hosts` only reaches external workers through the mesh handshake;
    // in relay mode the file would be silently ignored while the
    // coordinator spawns local workers — reject the combination up front.
    let dir = std::env::temp_dir().join(format!("dcme_hosts_nomesh_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let hosts = dir.join("hosts.txt");
    std::fs::write(&hosts, "127.0.0.1:9001\n127.0.0.1:9002\n").unwrap();
    let out = run_exp_worker(&[
        "--n",
        "300",
        "--shards",
        "2",
        "--graph",
        "ring",
        "--hosts",
        hosts.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected a usage error exit, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("--hosts requires --mesh"),
        "expected the flag-combination error, got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_graph_family_is_a_clean_error() {
    let out = run_exp_worker(&["--n", "100", "--shards", "2", "--graph", "torus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown graph family"));
}
