//! End-to-end smoke of the regression gate: the `exp_diff` binary must
//! report a self-diff as unchanged (exit 0 under `--check`), name exactly
//! the perturbed rows of a doctored candidate (exit 1), and hold the
//! committed `baselines/metrics-baseline.jsonl` to the parse/self-diff
//! invariants CI relies on.

use std::process::Command;

use dcme_bench::diff::{diff, RunFile, Tolerance};
use dcme_congest::{RoundRow, RunMetrics};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dcme_diff_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small synthetic experiment file: two labelled metrics rows, one with
/// a round series.
fn sample_jsonl() -> String {
    let mut text = String::new();
    let mut m = RunMetrics {
        rounds: 3,
        messages: 1200,
        total_bits: 9600,
        max_message_bits: 8,
        cross_shard_messages: 300,
        wire_bytes_sent: 4000,
        syscall_batches: 12,
        ..RunMetrics::default()
    };
    m.active_per_round = vec![400, 300, 200];
    text.push_str(&m.to_json("smoke/a"));
    text.push('\n');
    m.messages = 800;
    text.push_str(&m.to_json("smoke/b"));
    text.push('\n');
    for round in 0..3u64 {
        let row = RoundRow {
            round,
            active: 400 - round * 100,
            wall_nanos: 1000 + round,
            messages: 400,
            bits: 3200,
            cross_messages: 100,
            wire_bytes: 1300,
            ..RoundRow::default()
        };
        text.push_str(&row.to_json("smoke/a"));
        text.push('\n');
    }
    text
}

fn run_diff(before: &std::path::Path, after: &std::path::Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_exp_diff"))
        .args([before.to_str().unwrap(), after.to_str().unwrap(), "--check"])
        .output()
        .expect("spawn exp_diff");
    (
        out.status.success(),
        format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        ),
    )
}

#[test]
fn self_diff_passes_and_perturbation_is_reported_exactly() {
    let dir = tmp_dir("gate");
    let base = dir.join("base.jsonl");
    std::fs::write(&base, sample_jsonl()).unwrap();

    let (ok, report) = run_diff(&base, &base);
    assert!(ok, "self-diff must pass --check:\n{report}");
    assert!(report.contains("verdict: unchanged"), "{report}");
    assert!(report.contains("check: OK"), "{report}");

    // Perturb one counter and one series row; the report must name both
    // exactly and the gate must fire.
    let doctored = sample_jsonl()
        .replace("\"messages\":1200", "\"messages\":1201")
        .replace("\"round\":2,\"active\":200", "\"round\":2,\"active\":201");
    let cand = dir.join("cand.jsonl");
    std::fs::write(&cand, doctored).unwrap();
    let (ok, report) = run_diff(&base, &cand);
    assert!(!ok, "perturbed candidate must fail --check:\n{report}");
    assert!(
        report.contains("| messages | yes | 1200 | 1201 | +1 |"),
        "exact counter row missing:\n{report}"
    );
    assert!(
        report.contains("round 2: active 200 -> 201"),
        "exact changed round missing:\n{report}"
    );
    assert!(report.contains("check: REGRESSED"), "{report}");

    // Losing a label gates; gaining one does not.
    let shrunk: String = sample_jsonl()
        .lines()
        .filter(|l| !l.contains("smoke/b"))
        .map(|l| format!("{l}\n"))
        .collect();
    let partial = dir.join("partial.jsonl");
    std::fs::write(&partial, shrunk).unwrap();
    let (ok, report) = run_diff(&base, &partial);
    assert!(!ok, "lost coverage must fail --check:\n{report}");
    assert!(report.contains("only in baseline"), "{report}");
    let (ok, report) = run_diff(&partial, &base);
    assert!(ok, "new coverage must pass --check:\n{report}");
    assert!(report.contains("only in candidate"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed baseline itself: parseable, label-complete, and clean
/// under self-diff — the invariants the CI regression-gate step assumes.
#[test]
fn committed_baseline_parses_and_self_diffs_clean() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../baselines/metrics-baseline.jsonl");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    let file = RunFile::parse(&text).expect("committed baseline must parse");
    assert!(
        file.metrics.len() >= 10,
        "baseline should cover the smoke-bench labels, found {}",
        file.metrics.len()
    );
    for label in [
        "ring/n20000/seq",
        "circulant4/n20000/shards4/socket-tcp",
        "exp_worker/circulant4/n20000/shards4/mesh",
    ] {
        assert!(
            file.metrics.contains_key(label),
            "baseline is missing the {label} row"
        );
    }
    let report = diff(&file, &file, &Tolerance::default());
    assert!(!report.regressed(), "baseline must self-diff clean");
}
