//! E6 bench: (Δ+1)-coloring pipelines vs the baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use dcme_baselines as baselines;
use dcme_coloring::pipeline;
use dcme_congest::ExecutionMode;
use dcme_graphs::{coloring::Coloring, generators};

fn bench_delta_plus_one(c: &mut Criterion) {
    let g = generators::random_regular(200, 12, 17);
    let input = Coloring::from_ids(200);
    let mut group = c.benchmark_group("e6_delta_plus_one");
    group.sample_size(10);
    group.bench_function("paper_simple_pipeline", |b| {
        b.iter(|| pipeline::delta_plus_one(&g).unwrap());
    });
    group.bench_function("paper_scheduled_pipeline", |b| {
        b.iter(|| pipeline::delta_plus_one_scheduled(&g, None, ExecutionMode::Sequential).unwrap());
    });
    group.bench_function("baseline_kuhn_wattenhofer", |b| {
        b.iter(|| baselines::kuhn_wattenhofer(&g, &input).unwrap());
    });
    group.bench_function("baseline_locally_iterative", |b| {
        b.iter(|| baselines::locally_iterative_reduction(&g, &input, ExecutionMode::Sequential));
    });
    group.bench_function("baseline_randomized", |b| {
        b.iter(|| baselines::luby_coloring(&g, 1, ExecutionMode::Sequential));
    });
    group.bench_function("reference_greedy", |b| {
        b.iter(|| baselines::greedy_coloring(&g, None));
    });
    group.finish();
}

criterion_group!(benches, bench_delta_plus_one);
criterion_main!(benches);
