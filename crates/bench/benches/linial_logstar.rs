//! E11 bench: iterated Linial reduction from unique IDs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_coloring::linial;
use dcme_graphs::generators;

fn bench_logstar(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_linial_logstar");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let ring = generators::ring(n);
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, _| {
            b.iter(|| linial::delta_squared_from_ids(&ring, None).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_logstar);
criterion_main!(benches);
