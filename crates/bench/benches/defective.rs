//! E5 bench: d-defective colorings (Corollary 1.2(5)/(6)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_coloring::corollary;
use dcme_graphs::{coloring::Coloring, generators};

fn bench_defective(c: &mut Criterion) {
    let g = generators::random_regular(200, 32, 13);
    let input = Coloring::from_ids(200);
    let mut group = c.benchmark_group("e5_defective");
    group.sample_size(10);
    for d in [2u32, 8, 16] {
        group.bench_with_input(BenchmarkId::new("one_round", d), &d, |b, &d| {
            b.iter(|| corollary::defective_one_round(&g, &input, d).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("multi_round", d), &d, |b, &d| {
            b.iter(|| corollary::defective_multi_round(&g, &input, d).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_defective);
criterion_main!(benches);
