//! Scaling of the round engine itself, independent of any coloring
//! algorithm (`engine_scaling`).
//!
//! The workload is a gossip algorithm with *staggered* halting: most nodes
//! halt after a handful of rounds while a small fraction (1 in 97) keeps
//! broadcasting for a long tail of rounds.  This exercises exactly the two
//! costs the zero-allocation round engine removes — per-round buffer
//! allocation proportional to `n`, and per-round thread spawning — because
//! during the tail almost every node is halted, so an engine that still pays
//! `O(n)` per round is dominated by overhead rather than useful work.
//!
//! Run the full-size configuration (`n = 100_000`) with `cargo bench --bench
//! engine_scaling`; set `ENGINE_SCALING_SMOKE=1` (as CI does) for a
//! seconds-sized smoke run on `n = 2_000`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_congest::{
    ExecutionMode, Inbox, NodeAlgorithm, NodeContext, Outbox, Simulator, SimulatorConfig,
};
use dcme_graphs::generators;

/// Gossip with staggered halts: node `v` broadcasts its id every round and
/// halts after `ttl(v)` rounds, where most nodes get a small ttl and every
/// 97th node keeps going for `tail` rounds.
#[derive(Clone)]
struct StaggeredGossip {
    id: u64,
    ttl: u64,
    tail: u64,
    heard: u64,
    rounds_done: u64,
}

impl StaggeredGossip {
    fn new(tail: u64) -> Self {
        Self {
            id: 0,
            ttl: 0,
            tail,
            heard: 0,
            rounds_done: 0,
        }
    }
}

impl NodeAlgorithm for StaggeredGossip {
    type Message = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeContext) {
        self.id = ctx.node as u64;
        self.ttl = if ctx.node % 97 == 0 {
            self.tail
        } else {
            2 + (self.id % 7)
        };
    }

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
        Outbox::Broadcast(self.id)
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
        for (_, m) in inbox.iter() {
            self.heard = self.heard.wrapping_add(*m);
        }
        self.rounds_done += 1;
    }

    fn is_halted(&self) -> bool {
        self.rounds_done >= self.ttl
    }

    fn output(&self) -> u64 {
        self.heard
    }
}

fn engine_scaling(c: &mut Criterion) {
    let smoke = std::env::var_os("ENGINE_SCALING_SMOKE").is_some();
    let (n, tail, samples) = if smoke {
        (2_000usize, 16u64, 3usize)
    } else {
        (100_000usize, 64u64, 5usize)
    };

    let graphs = [
        ("ring", generators::ring(n)),
        ("random8", generators::random_regular(n, 8, 7)),
    ];
    let modes = [
        ("seq", ExecutionMode::Sequential),
        ("par1", ExecutionMode::Parallel { threads: 1 }),
        ("par2", ExecutionMode::Parallel { threads: 2 }),
        ("par4", ExecutionMode::Parallel { threads: 4 }),
    ];

    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(samples);
    for (graph_name, g) in &graphs {
        for (mode_name, mode) in modes {
            let id = BenchmarkId::new(format!("{graph_name}/n{n}"), mode_name);
            group.bench_with_input(id, &mode, |b, &mode| {
                b.iter(|| {
                    let nodes: Vec<StaggeredGossip> =
                        (0..n).map(|_| StaggeredGossip::new(tail)).collect();
                    let sim = Simulator::with_config(
                        g,
                        SimulatorConfig {
                            max_rounds: 1_000_000,
                            mode,
                        },
                    );
                    sim.run(nodes)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, engine_scaling);
criterion_main!(benches);
