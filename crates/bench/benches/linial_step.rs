//! E2 bench: Linial's one-round color reduction (Corollary 1.2(1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_coloring::corollary;
use dcme_graphs::{coloring::Coloring, generators};

fn bench_linial_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_linial_step");
    group.sample_size(10);
    for delta in [8usize, 16, 32] {
        let g = generators::random_regular(300, delta, 3);
        let input = Coloring::from_ids(300);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            b.iter(|| corollary::linial_color_reduction(&g, &input).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linial_step);
criterion_main!(benches);
