//! Scaling of the sharded round engine at `n = 10^7` (`engine_sharding`).
//!
//! The graphs are built with the streaming [`dcme_graphs::streaming`]
//! builders straight into a [`ShardedTopology`] — no global edge list is
//! ever materialized, so a 10-million-node ring and a `d`-regular circulant
//! fit comfortably in memory (the compact sharded CSR is the peak).  Each
//! configuration runs the same staggered-halting gossip workload as
//! `engine_scaling` to completion under the [`SequentialExecutor`]
//! (reference; it is generic over the topology representation) and the
//! [`ShardedExecutor`] (one worker per shard, cross-shard messages through
//! staging queues), asserting bit-for-bit identical outputs along the way.
//!
//! Run the full-size configuration (`n = 10^7`) with `cargo bench --bench
//! engine_sharding`; set `ENGINE_SHARDING_SMOKE=1` (as CI does) for a
//! seconds-sized smoke run on `n = 20_000`.  Set
//! `DCME_METRICS_JSONL=path.jsonl` to append one machine-readable
//! [`RunMetrics`] row per configuration (JSON lines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_bench::workloads;
use dcme_congest::{
    JsonLinesWriter, RunMetrics, RunOutcome, SequentialExecutor, ShardedExecutor, ShardedTopology,
    Simulator, SimulatorConfig, TopologyView,
};
use dcme_graphs::streaming;

fn run(g: &ShardedTopology, tail: u64, sharded: bool) -> RunOutcome<u64> {
    // Gossip with staggered halts, shared with `engine_scaling` and
    // `engine_transport` (see `dcme_bench::workloads`).
    let nodes = workloads::gossip_nodes(0..g.num_nodes(), tail);
    let sim = Simulator::with_config(
        g,
        SimulatorConfig {
            max_rounds: 1_000_000,
            ..SimulatorConfig::default()
        },
    );
    if sharded {
        sim.run_with_executor(nodes, &ShardedExecutor::new())
    } else {
        sim.run_with_executor(nodes, &SequentialExecutor)
    }
}

fn engine_sharding(c: &mut Criterion) {
    let smoke = std::env::var_os("ENGINE_SHARDING_SMOKE").is_some();
    let (n, tail, samples, shards) = if smoke {
        (20_000usize, 8u64, 2usize, 4usize)
    } else {
        (10_000_000usize, 16u64, 3usize, 8usize)
    };

    let graphs = [
        ("ring", streaming::ring(n, shards).expect("streamed ring")),
        (
            "circulant4",
            streaming::random_regular(n, 4, 7, shards).expect("streamed circulant"),
        ),
    ];

    // One digest per (graph, executor): the sharded executor must agree
    // with the sequential reference bit for bit, even at n = 10^7.
    let mut jsonl = std::env::var_os("DCME_METRICS_JSONL").map(|path| {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open DCME_METRICS_JSONL sink");
        JsonLinesWriter::new(file)
    });
    let mut record = |label: &str, metrics: &RunMetrics| {
        if let Some(w) = jsonl.as_mut() {
            w.append(label, metrics).expect("append jsonl row");
        }
    };
    for (graph_name, g) in &graphs {
        let seq = run(g, tail, false);
        let shd = run(g, tail, true);
        assert_eq!(
            seq.outputs, shd.outputs,
            "sharded executor diverged on {graph_name}"
        );
        assert_eq!(seq.metrics.messages, shd.metrics.messages);
        record(&format!("{graph_name}/n{n}/seq"), &seq.metrics);
        record(&format!("{graph_name}/n{n}/sharded{shards}"), &shd.metrics);
    }

    let mut group = c.benchmark_group("engine_sharding");
    group.sample_size(samples);
    for (graph_name, g) in &graphs {
        for sharded in [false, true] {
            let mode_name = if sharded {
                format!("shard{shards}")
            } else {
                "seq".to_string()
            };
            let id = BenchmarkId::new(format!("{graph_name}/n{n}"), mode_name);
            group.bench_with_input(id, &sharded, |b, &sharded| {
                b.iter(|| run(g, tail, sharded));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, engine_sharding);
criterion_main!(benches);
