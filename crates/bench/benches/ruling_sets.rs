//! E8 bench: (2,r)-ruling sets (Theorem 1.5) vs the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_coloring::ruling;
use dcme_graphs::generators;

fn bench_ruling(c: &mut Criterion) {
    let g = generators::random_regular(200, 16, 29);
    let mut group = c.benchmark_group("e8_ruling_sets");
    group.sample_size(10);
    for r in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("theorem_1_5", r), &r, |b, &r| {
            b.iter(|| ruling::ruling_set(&g, r).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("baseline", r), &r, |b, &r| {
            b.iter(|| ruling::ruling_set_baseline(&g, r).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ruling);
criterion_main!(benches);
