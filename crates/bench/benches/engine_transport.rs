//! In-process vs socket-loopback transport on the `engine_sharding` graph
//! family (`engine_transport`).
//!
//! Same graphs and staggered-halting gossip workload as `engine_sharding`
//! (streamed ring + random 4-regular circulant), but the variable is the
//! **cross-shard transport backend** of the [`ShardedExecutor`]: the
//! in-process staging queues against a full mesh of loopback sockets where
//! every cross-shard message is wire-encoded (`dcme_congest::wire`),
//! length-prefix framed, flushed at the send barrier and decoded by the
//! receiving shard.  Outputs are cross-checked bit for bit between the
//! backends before timing starts.
//!
//! The multi-process backend is benched too, as `mp-relay` vs `mp-mesh`
//! rows: the `exp_worker` binary with one worker **process** per shard,
//! data frames either relayed through the coordinator or exchanged over
//! the direct worker↔worker mesh.  Before timing, the bench asserts the
//! scale-out contract on the circulant: mesh mode relays **zero** data
//! bytes through the coordinator and cuts total cross-shard wire traffic
//! (worker sends + coordinator forwards) by at least 40%.
//!
//! Run the full configuration (`n = 10^6`, 8 shards) with `cargo bench
//! --bench engine_transport`; set `ENGINE_TRANSPORT_SMOKE=1` (as CI does)
//! for a seconds-sized run on `n = 20_000`, 4 shards.  Set
//! `DCME_METRICS_JSONL=path.jsonl` to append one machine-readable
//! [`RunMetrics`] row per configuration — socket rows include the
//! `wire_bytes_sent` / `transport_flush_nanos` transport counters, and the
//! `exp_worker` subprocesses (which inherit the variable) append their own
//! rows with per-process `peak_rss_bytes` and `relayed_data_bytes`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_bench::workloads;
use dcme_congest::{
    JsonLinesWriter, RunMetrics, RunOutcome, ShardedExecutor, ShardedTopology, Simulator,
    SimulatorConfig, SocketLoopback, TopologyView,
};

/// The transport backends under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    InProcess,
    SocketUnix,
    SocketTcp,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::InProcess => "inproc",
            Backend::SocketUnix => "socket-unix",
            Backend::SocketTcp => "socket-tcp",
        }
    }
}

fn run(g: &ShardedTopology, tail: u64, backend: Backend) -> RunOutcome<u64> {
    let nodes = workloads::gossip_nodes(0..g.num_nodes(), tail);
    let sim = Simulator::with_config(
        g,
        SimulatorConfig {
            max_rounds: 1_000_000,
            ..SimulatorConfig::default()
        },
    );
    match backend {
        Backend::InProcess => sim.run_with_executor(nodes, &ShardedExecutor::new()),
        Backend::SocketUnix => {
            #[cfg(unix)]
            {
                sim.run_with_executor(
                    nodes,
                    &ShardedExecutor::with_transport(SocketLoopback::unix()),
                )
            }
            #[cfg(not(unix))]
            unreachable!("unix backend is only benched on unix")
        }
        Backend::SocketTcp => sim.run_with_executor(
            nodes,
            &ShardedExecutor::with_transport(SocketLoopback::tcp()),
        ),
    }
}

/// One coordinator + `shards` worker-process run of the circulant gossip
/// via the `exp_worker` binary; returns the printed `(wire_bytes,
/// relayed_bytes)` counters.  The child inherits `DCME_METRICS_JSONL`, so
/// metric rows (with per-process peak RSS) land in the same sink.
fn run_multiprocess(n: usize, shards: usize, tail: u64, mesh: bool) -> (u64, u64) {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_exp_worker"));
    cmd.args([
        "--n",
        &n.to_string(),
        "--shards",
        &shards.to_string(),
        "--graph",
        "circulant4",
        "--tail",
        &tail.to_string(),
        "--seed",
        "7",
    ]);
    if mesh {
        cmd.arg("--mesh");
    }
    let out = cmd.output().expect("run exp_worker");
    assert!(
        out.status.success(),
        "exp_worker failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> u64 {
        stdout
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key}= in: {stdout}"))
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric {key}= in: {stdout}"))
    };
    (field("wire_bytes"), field("relayed_bytes"))
}

fn engine_transport(c: &mut Criterion) {
    let smoke = std::env::var_os("ENGINE_TRANSPORT_SMOKE").is_some();
    let (n, tail, samples, shards) = if smoke {
        (20_000usize, 8u64, 2usize, 4usize)
    } else {
        (1_000_000usize, 16u64, 3usize, 8usize)
    };
    let backends: &[Backend] = if cfg!(unix) {
        &[Backend::InProcess, Backend::SocketUnix, Backend::SocketTcp]
    } else {
        &[Backend::InProcess, Backend::SocketTcp]
    };

    let graphs = [
        (
            "ring",
            workloads::build_graph("ring", n, shards, 7).expect("streamed ring"),
        ),
        (
            "circulant4",
            workloads::build_graph("circulant4", n, shards, 7).expect("streamed circulant"),
        ),
    ];

    let mut jsonl = std::env::var_os("DCME_METRICS_JSONL").map(|path| {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open DCME_METRICS_JSONL sink");
        JsonLinesWriter::new(file)
    });
    let mut record = |label: &str, metrics: &RunMetrics| {
        if let Some(w) = jsonl.as_mut() {
            w.append(label, metrics).expect("append jsonl row");
        }
    };

    // Cross-check once per (graph, backend): every backend must agree with
    // the in-process executor bit for bit on outputs and logical counters,
    // and socket backends must have pushed real bytes through the wire.
    for (graph_name, g) in &graphs {
        let reference = run(g, tail, Backend::InProcess);
        record(
            &format!("{graph_name}/n{n}/shards{shards}/inproc"),
            &reference.metrics,
        );
        for &backend in backends.iter().filter(|&&b| b != Backend::InProcess) {
            let out = run(g, tail, backend);
            assert_eq!(
                reference.outputs,
                out.outputs,
                "{} diverged on {graph_name}",
                backend.name()
            );
            assert_eq!(reference.metrics.messages, out.metrics.messages);
            assert_eq!(reference.metrics.total_bits, out.metrics.total_bits);
            assert_eq!(
                reference.metrics.cross_shard_messages,
                out.metrics.cross_shard_messages
            );
            assert!(
                out.metrics.wire_bytes_sent > 0,
                "socket backend must move real wire bytes"
            );
            record(
                &format!("{graph_name}/n{n}/shards{shards}/{}", backend.name()),
                &out.metrics,
            );
        }
    }

    // The scale-out gate (checked once, before timing): on the circulant,
    // mesh mode must relay zero data bytes through the coordinator and cut
    // total cross-shard wire traffic — every data frame crosses the wire
    // once (worker→worker) instead of twice (worker→coordinator→worker) —
    // by at least 40%.
    let (relay_wire, relay_relayed) = run_multiprocess(n, shards, tail, false);
    let (mesh_wire, mesh_relayed) = run_multiprocess(n, shards, tail, true);
    assert!(relay_relayed > 0, "relay mode must forward data frames");
    assert_eq!(mesh_relayed, 0, "mesh mode must relay no data bytes");
    let relay_total = relay_wire + relay_relayed;
    let mesh_total = mesh_wire + mesh_relayed;
    assert!(
        (mesh_total as f64) <= 0.6 * relay_total as f64,
        "mesh must cut total cross-shard wire bytes by >=40%: relay {relay_total} vs mesh {mesh_total}"
    );

    let mut group = c.benchmark_group("engine_transport");
    group.sample_size(samples);
    for (graph_name, g) in &graphs {
        for &backend in backends {
            let id = BenchmarkId::new(format!("{graph_name}/n{n}"), backend.name());
            group.bench_with_input(id, &backend, |b, &backend| {
                b.iter(|| run(g, tail, backend));
            });
        }
    }
    for mesh in [false, true] {
        let id = BenchmarkId::new(
            format!("circulant4/n{n}/multiproc"),
            if mesh { "mp-mesh" } else { "mp-relay" },
        );
        group.bench_with_input(id, &mesh, |b, &mesh| {
            b.iter(|| run_multiprocess(n, shards, tail, mesh));
        });
    }
    group.finish();
}

criterion_group!(benches, engine_transport);
criterion_main!(benches);
