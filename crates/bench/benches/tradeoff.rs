//! E1 bench: round cost of the mother algorithm as k varies (Theorem 1.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_coloring::{trial, TrialConfig};
use dcme_graphs::{coloring::Coloring, generators};

fn bench_tradeoff(c: &mut Criterion) {
    let g = generators::random_regular(200, 16, 7);
    let input = Coloring::from_ids(200);
    let mut group = c.benchmark_group("e1_tradeoff");
    group.sample_size(10);
    for k in [1u64, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| trial::run(&g, &input, TrialConfig::proper(k)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tradeoff);
criterion_main!(benches);
