//! E4 bench: β-outdegree colorings (Corollary 1.2(4)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_coloring::corollary;
use dcme_graphs::{coloring::Coloring, generators};

fn bench_outdegree(c: &mut Criterion) {
    let g = generators::random_regular(200, 32, 11);
    let input = Coloring::from_ids(200);
    let mut group = c.benchmark_group("e4_outdegree");
    group.sample_size(10);
    for beta in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, &beta| {
            b.iter(|| corollary::outdegree_coloring(&g, &input, beta).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_outdegree);
criterion_main!(benches);
