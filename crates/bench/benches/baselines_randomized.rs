//! Randomized-baselines bench: the folklore Luby trials vs the HNT
//! ultrafast structure vs the D1LC degree+1 list coloring, with the paper's
//! `(Δ+1)` pipeline as the deterministic reference (`baselines_randomized`).
//!
//! All four run sequentially on the same random-regular graph, so the
//! numbers compare *algorithms*, not executors (the EB experiment table and
//! `tests/executor_equivalence.rs` cover the executor/transport axis).  Run
//! the full configuration (`n = 20_000`, Δ = 16) with `cargo bench --bench
//! baselines_randomized`; set `BASELINES_RANDOMIZED_SMOKE=1` (as CI does)
//! for a seconds-sized run on `n = 400` that still executes both new
//! baselines end to end.  Set `DCME_METRICS_JSONL=path.jsonl` to append one
//! machine-readable [`RunMetrics`] row per randomized algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use dcme_baselines as baselines;
use dcme_coloring::pipeline;
use dcme_congest::{ExecutionMode, JsonLinesWriter, RunMetrics};
use dcme_graphs::generators;

fn append_metrics(rows: &[(String, RunMetrics)]) {
    let Some(path) = std::env::var_os("DCME_METRICS_JSONL") else {
        return;
    };
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open DCME_METRICS_JSONL");
    let mut writer = JsonLinesWriter::new(file);
    for (label, metrics) in rows {
        writer.append(label, metrics).expect("append metrics row");
    }
}

fn bench_baselines_randomized(c: &mut Criterion) {
    let smoke = std::env::var_os("BASELINES_RANDOMIZED_SMOKE").is_some();
    let (n, delta, samples) = if smoke {
        (400usize, 8usize, 2usize)
    } else {
        (20_000, 16, 10)
    };
    let g = generators::random_regular(n, delta, 71);
    let seed = 1u64;

    let mut group = c.benchmark_group(format!("baselines_randomized/n{n}/d{delta}"));
    group.sample_size(samples);
    group.bench_function("luby_trials", |b| {
        b.iter(|| baselines::luby_coloring(&g, seed, ExecutionMode::Sequential));
    });
    group.bench_function("hnt_ultrafast", |b| {
        b.iter(|| baselines::ultrafast_coloring(&g, seed, ExecutionMode::Sequential));
    });
    group.bench_function("d1lc_degree_plus_one", |b| {
        b.iter(|| baselines::degree_plus_one_coloring(&g, seed, ExecutionMode::Sequential));
    });
    group.bench_function("paper_pipeline_reference", |b| {
        b.iter(|| pipeline::delta_plus_one(&g).unwrap());
    });
    group.finish();

    append_metrics(&[
        (
            format!("luby/n{n}/d{delta}"),
            baselines::luby_coloring(&g, seed, ExecutionMode::Sequential).metrics,
        ),
        (
            format!("ultrafast/n{n}/d{delta}"),
            baselines::ultrafast_coloring(&g, seed, ExecutionMode::Sequential).metrics,
        ),
        (
            format!("degree_plus_one/n{n}/d{delta}"),
            baselines::degree_plus_one_coloring(&g, seed, ExecutionMode::Sequential).metrics,
        ),
    ]);
}

criterion_group!(benches, bench_baselines_randomized);
criterion_main!(benches);
