//! E7 bench: Theorem 1.3 O(Δ^{1+ε})-coloring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcme_coloring::fast;
use dcme_congest::ExecutionMode;
use dcme_graphs::{coloring::Coloring, generators};

fn bench_fast(c: &mut Criterion) {
    let g = generators::random_regular(200, 32, 23);
    let delta = g.max_degree() as u64;
    let input = Coloring::from_identifiers(&(0..200u64).collect::<Vec<_>>(), delta.pow(4).max(200));
    let mut group = c.benchmark_group("e7_fast_coloring");
    group.sample_size(10);
    for eps in [0.25f64, 0.5, 0.75] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| fast::fast_coloring(&g, &input, eps, ExecutionMode::Sequential).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fast);
criterion_main!(benches);
