//! E9 bench: one-round color reduction (Lemma 4.1) and the exhaustive
//! tightness search (Theorem 1.6) on tiny parameters.

use criterion::{criterion_group, criterion_main, Criterion};
use dcme_coloring::{linial, reduction};
use dcme_congest::ExecutionMode;
use dcme_graphs::generators;

fn bench_one_round(c: &mut Criterion) {
    let g = generators::random_regular(200, 8, 31);
    let seed = linial::delta_squared_from_ids(&g, None).unwrap().coloring;
    let mut group = c.benchmark_group("e9_one_round");
    group.sample_size(10);
    group.bench_function("algorithm_2_single_round", |b| {
        b.iter(|| reduction::one_round_reduction(&g, &seed, ExecutionMode::Sequential).unwrap());
    });
    group.bench_function("exhaustive_search_delta2_m4", |b| {
        b.iter(|| reduction::one_round_algorithm_exists(2, 4, 3, 3_000_000));
    });
    group.finish();
}

criterion_group!(benches, bench_one_round);
criterion_main!(benches);
