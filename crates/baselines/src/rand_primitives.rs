//! Shared machinery of the randomized comparison baselines
//! ([`crate::ultrafast`] and [`crate::degree_plus_one`]).
//!
//! Everything here exists to make *randomized* CONGEST algorithms behave
//! like first-class citizens of the engine, which demands executor
//! independence: the sequential, pooled and sharded executors (and the
//! socket transports underneath them) must produce **bit-identical** runs
//! for a fixed seed.  The engine guarantees that only for algorithms that
//! are deterministic functions of their explicit state, so all randomness is
//! drawn from *stateless per-round streams*: [`round_rng`] derives a fresh
//! generator from `(seed, node, round)` alone, never from execution history.
//! A node's round-`r` coin flips are therefore the same no matter which
//! executor ran rounds `0..r`, how its inbox slots were delivered, or which
//! process hosts its shard.
//!
//! On top of the streams, the module provides the sampling steps both
//! baseline papers build from:
//!
//! * [`uniform_free_color`] — the TryColor primitive: a uniform draw from a
//!   palette minus the colors already taken by finalised neighbours
//!   (rejection sampling with a dense-palette fallback, so it is `O(1)`
//!   expected and always exact);
//! * [`sample_candidates`] — palette sparsification: a small uniform batch
//!   of *distinct* candidate colors, the \[HNT21\]/\[HKNT22\] trick of
//!   trying a sparse random sub-palette instead of the full list;
//! * [`classify_slack`] / [`Bucket`] — a one-round, CONGEST-feasible proxy
//!   for the papers' almost-clique decomposition: a node that observes a
//!   *repeated* color among its neighbours' slack-generation samples has
//!   witnessed permanent slack (two neighbours burning one color) and is
//!   bucketed [`Bucket::Sparse`]; a node whose sampled neighbourhood looks
//!   rainbow-like (clique-ish) is [`Bucket::Dense`].  The real ACD needs
//!   `Ω(log n)`-round neighbourhood probing; this proxy is the honest
//!   one-round version and is documented as such in DESIGN.md;
//! * [`slack`] — the slack of a node in the \[HNT21\] sense: palette size
//!   minus competitors;
//! * [`TryColorCore`] — the propose / conflict / finalise / announce / halt
//!   state machine every trial-based algorithm repeats ([`crate::luby`]
//!   predates it and keeps its inline copy as the independently-written
//!   reference).

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

use crate::bitset::ColorSet;

/// SplitMix64's avalanche: a bijective mixer with full 64-bit diffusion.
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of the `(seed, node, round)` stream: each coordinate is mixed
/// through a full avalanche before the next is folded in, so streams of
/// adjacent nodes / rounds share no visible structure.
pub fn stream_seed(seed: u64, node: u64, round: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
    z = avalanche(z.wrapping_add(node.wrapping_mul(0xD1B5_4A32_D192_ED03)));
    z = avalanche(z.wrapping_add(round.wrapping_mul(0xA0B4_28DB_7CE5_4705)));
    avalanche(z)
}

/// A fresh generator for one node's coin flips in one round — a pure
/// function of `(seed, node, round)`, which is what makes the randomized
/// baselines executor- and transport-independent (see the module docs).
pub fn round_rng(seed: u64, node: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(seed, node, round))
}

/// The slack of a node: how many more colors its palette holds than it has
/// competitors (uncolored neighbours) plus already-burned colors.  Positive
/// slack is what lets random trials succeed with constant probability.
pub fn slack(palette: u64, active_neighbors: usize, blocked: usize) -> i64 {
    palette as i64 - active_neighbors as i64 - blocked as i64
}

/// A uniform draw from `[0, palette) \ blocked`, or `None` if no color is
/// free.
///
/// Rejection-samples the palette (fast while the free fraction is large)
/// and falls back to rank-indexing the free set in place
/// ([`ColorSet::nth_free`], no allocation), so the draw is exactly
/// uniform over the free colors in every regime.  The draw sequence is
/// bit-identical to the historical `HashSet` + materialised-`Vec`
/// implementation: the rejection loop consumes the same draws, and the
/// fallback's `nth_free(palette, i)` is exactly `free[i]` of the sorted
/// free list it used to build.
pub fn uniform_free_color<R: RngCore>(
    rng: &mut R,
    palette: u64,
    blocked: &ColorSet,
) -> Option<u64> {
    if palette == 0 {
        return None;
    }
    let free = blocked.count_free(palette);
    if free == 0 {
        return None;
    }
    for _ in 0..64 {
        let c = rng.random_range(0..palette);
        if !blocked.contains(c) {
            return Some(c);
        }
    }
    blocked.nth_free(palette, rng.random_range(0..free))
}

/// Palette sparsification: `min(k, palette)` *distinct* colors drawn
/// uniformly from `[0, palette)`, in sampling order.
///
/// Rejection-samples until the batch is full; a (probabilistically
/// negligible, but deterministic-budget) failure to fill the batch is
/// topped up with the smallest unsampled colors so the function always
/// returns exactly `min(k, palette)` candidates.
pub fn sample_candidates<R: RngCore>(rng: &mut R, palette: u64, k: usize) -> Vec<u64> {
    // The batch size is capped at the palette size up front — the loop
    // below is purely a rejection budget, never the size bound.
    let want = (k as u64).min(palette) as usize;
    let mut out = Vec::with_capacity(want);
    let mut seen = ColorSet::with_palette(palette);
    let mut budget = 32 * want;
    while out.len() < want && budget > 0 {
        budget -= 1;
        let c = rng.random_range(0..palette);
        if seen.insert(c) {
            out.push(c);
        }
    }
    let mut c = 0;
    while out.len() < want {
        if seen.insert(c) {
            out.push(c);
        }
        c += 1;
    }
    out
}

/// The almost-clique-decomposition-style bucket of a node (see the module
/// docs for what this one-round proxy does and does not capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// Observed slack (a repeated color among neighbour samples, or too few
    /// samples to call the neighbourhood clique-like): keep running
    /// synchronized random trials.
    Sparse,
    /// Rainbow-like sampled neighbourhood (every sample distinct): likely an
    /// almost-clique member with little slack; switch to the deterministic
    /// fallback immediately instead of wasting trial rounds.
    Dense,
}

/// Buckets a node from its slack-generation observations: `tried` neighbour
/// samples, `distinct` distinct colors among them.
pub fn classify_slack(tried: usize, distinct: usize) -> Bucket {
    debug_assert!(distinct <= tried);
    if tried >= 2 && distinct == tried {
        Bucket::Dense
    } else {
        Bucket::Sparse
    }
}

/// The propose → conflict → finalise → announce → halt core every
/// trial-based coloring algorithm shares.
///
/// The lifecycle per node: while undecided, each round [`propose`] a color
/// (the caller picks it — that is where the algorithms differ) and
/// broadcast it; in the receive step, [`block`] every color a neighbour
/// announced as final and [`resolve`] against the observed conflicts.  Once
/// finalised, [`take_announcement`] yields the color to broadcast exactly
/// once, and [`retire_after_announce`] halts the node at the end of its
/// announce round (mirroring the engine's "a halted node's last messages
/// are still delivered" semantics).
///
/// [`propose`]: TryColorCore::propose
/// [`block`]: TryColorCore::block
/// [`resolve`]: TryColorCore::resolve
/// [`take_announcement`]: TryColorCore::take_announcement
/// [`retire_after_announce`]: TryColorCore::retire_after_announce
#[derive(Debug, Clone, Default)]
pub struct TryColorCore {
    /// Colors permanently taken by finalised neighbours (a word-bitmap;
    /// see [`ColorSet`] for why it may hold colors past the palette).
    pub blocked: ColorSet,
    /// This round's proposal, if any.
    pub proposal: Option<u64>,
    /// The permanently adopted color.
    pub finalized: Option<u64>,
    announced: bool,
    halted: bool,
}

impl TryColorCore {
    /// A fresh, undecided core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records this round's proposal and returns it (for the outbox).
    pub fn propose(&mut self, color: u64) -> u64 {
        self.proposal = Some(color);
        color
    }

    /// Withdraws the proposal (a round in which the node stays silent).
    pub fn clear_proposal(&mut self) {
        self.proposal = None;
    }

    /// Marks `color` permanently taken by a neighbour; returns `true` if it
    /// collides with this round's proposal (the proposal is then beaten).
    pub fn block(&mut self, color: u64) -> bool {
        self.blocked.insert(color);
        self.proposal == Some(color)
    }

    /// The proposal as a branchless comparison key: the proposed color, or
    /// `u64::MAX` (outside every palette) when the node is silent.  Lets a
    /// receive loop test `color == key` with a plain integer compare
    /// instead of an `Option` match per message.
    #[inline]
    pub fn proposal_key(&self) -> u64 {
        self.proposal.unwrap_or(u64::MAX)
    }

    /// Branchless [`block`](Self::block): inserts `color` and returns the
    /// collision verdict as a `0`/`1` mask to `|=` into an accumulator.
    #[inline]
    pub fn block_mask(&mut self, color: u64) -> u64 {
        self.blocked.insert(color);
        u64::from(color == self.proposal_key())
    }

    /// Ends the round from an accumulated beaten mask (any non-zero bit ⇒
    /// beaten): resolves the proposal and clears it — the batched
    /// equivalent of `resolve(beaten); clear_proposal()`.
    pub fn observe_round(&mut self, beaten_mask: u64) {
        self.resolve(beaten_mask != 0);
        self.clear_proposal();
    }

    /// Ends the round: an unbeaten proposal becomes the final color.
    pub fn resolve(&mut self, beaten: bool) {
        if !beaten {
            if let Some(c) = self.proposal {
                self.finalized = Some(c);
            }
        }
    }

    /// The color to announce — `Some` exactly once, in the first send after
    /// finalising.
    pub fn take_announcement(&mut self) -> Option<u64> {
        match self.finalized {
            Some(c) if !self.announced => {
                self.announced = true;
                Some(c)
            }
            _ => None,
        }
    }

    /// Halts the node if its announcement is out; call first in `receive`
    /// and return early on `true`.
    pub fn retire_after_announce(&mut self) -> bool {
        if self.announced {
            self.halted = true;
        }
        self.halted
    }

    /// Whether the node has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn color_set(colors: impl IntoIterator<Item = u64>) -> ColorSet {
        let mut s = ColorSet::new();
        for c in colors {
            s.insert(c);
        }
        s
    }

    #[test]
    fn round_streams_are_deterministic_and_distinct() {
        for (node, round) in [(0u64, 0u64), (0, 1), (1, 0), (17, 3)] {
            let a: Vec<u64> = {
                let mut r = round_rng(42, node, round);
                (0..8).map(|_| r.next_u64()).collect()
            };
            let b: Vec<u64> = {
                let mut r = round_rng(42, node, round);
                (0..8).map(|_| r.next_u64()).collect()
            };
            assert_eq!(a, b, "stream ({node},{round}) must be reproducible");
        }
        // Neighbouring coordinates give unrelated streams.
        assert_ne!(stream_seed(42, 0, 0), stream_seed(42, 0, 1));
        assert_ne!(stream_seed(42, 0, 0), stream_seed(42, 1, 0));
        assert_ne!(stream_seed(42, 0, 0), stream_seed(43, 0, 0));
    }

    #[test]
    fn free_color_is_never_blocked_and_none_when_exhausted() {
        let mut rng = round_rng(7, 0, 0);
        let blocked = color_set([0, 2, 4]);
        for _ in 0..200 {
            let c = uniform_free_color(&mut rng, 6, &blocked).unwrap();
            assert!(c < 6 && !blocked.contains(c));
        }
        let all = color_set(0..6);
        assert_eq!(uniform_free_color(&mut rng, 6, &all), None);
        assert_eq!(uniform_free_color(&mut rng, 0, &ColorSet::new()), None);
    }

    #[test]
    fn free_color_dense_fallback_stays_uniform_over_the_free_set() {
        // 1 free color in 1000: rejection nearly always fails its budget,
        // forcing the nth_free rank-indexed path.
        let blocked = color_set((0..1000).filter(|&c| c != 123));
        let mut rng = round_rng(3, 1, 2);
        for _ in 0..20 {
            assert_eq!(uniform_free_color(&mut rng, 1000, &blocked), Some(123));
        }
    }

    /// The historical `HashSet` + materialised-`Vec` implementations, kept
    /// verbatim as the draw-sequence reference for the bitset rewrite.
    mod reference {
        use super::HashSet;
        use rand::{RngCore, RngExt};

        pub fn uniform_free_color<R: RngCore>(
            rng: &mut R,
            palette: u64,
            blocked: &HashSet<u64>,
        ) -> Option<u64> {
            if palette == 0 {
                return None;
            }
            let blocked_in = blocked.iter().filter(|&&c| c < palette).count() as u64;
            if blocked_in >= palette {
                return None;
            }
            for _ in 0..64 {
                let c = rng.random_range(0..palette);
                if !blocked.contains(&c) {
                    return Some(c);
                }
            }
            let free: Vec<u64> = (0..palette).filter(|c| !blocked.contains(c)).collect();
            Some(free[rng.random_range(0..free.len())])
        }

        pub fn sample_candidates<R: RngCore>(rng: &mut R, palette: u64, k: usize) -> Vec<u64> {
            let want = (k as u64).min(palette) as usize;
            let mut out = Vec::with_capacity(want);
            let mut seen = HashSet::with_capacity(want);
            for _ in 0..32 * want {
                if out.len() == want {
                    break;
                }
                let c = rng.random_range(0..palette);
                if seen.insert(c) {
                    out.push(c);
                }
            }
            let mut c = 0;
            while out.len() < want {
                if seen.insert(c) {
                    out.push(c);
                }
                c += 1;
            }
            out
        }
    }

    /// The bitset rewrite must be draw-for-draw identical to the old
    /// `HashSet` implementation: same results *and* the shared generator
    /// left in the same state (i.e. the same number of draws consumed),
    /// across sparse, dense and exhausted palettes for seeds 0..32.
    #[test]
    fn bitset_draw_sequence_matches_the_hashset_reference() {
        for seed in 0..32u64 {
            for (palette, blocked_n) in [
                (1u64, 0u64),
                (7, 3),
                (64, 60),
                (100, 99),
                (1000, 997),
                (65, 0),
            ] {
                // A seed-dependent blocked set with `blocked_n` members.
                let mut pick = round_rng(seed ^ 0xB10C, 0, palette);
                let mut old_blocked = HashSet::new();
                let mut new_blocked = ColorSet::new();
                while (old_blocked.len() as u64) < blocked_n {
                    let c = pick.random_range(0..palette);
                    if old_blocked.insert(c) {
                        new_blocked.insert(c);
                    }
                }

                let mut old_rng = round_rng(seed, 1, 2);
                let mut new_rng = round_rng(seed, 1, 2);
                for _ in 0..40 {
                    assert_eq!(
                        reference::uniform_free_color(&mut old_rng, palette, &old_blocked),
                        uniform_free_color(&mut new_rng, palette, &new_blocked),
                        "seed {seed} palette {palette} blocked {blocked_n}"
                    );
                }
                for k in [1usize, 3, 8, 64] {
                    assert_eq!(
                        reference::sample_candidates(&mut old_rng, palette, k),
                        sample_candidates(&mut new_rng, palette, k),
                        "seed {seed} palette {palette} k {k}"
                    );
                }
                // Same draw counts: the streams stay aligned to the end.
                assert_eq!(old_rng.next_u64(), new_rng.next_u64());
            }
        }
    }

    #[test]
    fn observe_round_mirrors_resolve_and_clear() {
        let mut batched = TryColorCore::new();
        batched.propose(4);
        assert_eq!(batched.proposal_key(), 4);
        let mut mask = 0u64;
        mask |= batched.block_mask(2);
        mask |= u64::from(3 == batched.proposal_key());
        assert_eq!(mask, 0);
        mask |= batched.block_mask(4);
        assert_eq!(mask, 1);
        batched.observe_round(mask);
        assert_eq!(batched.finalized, None, "a blocked proposal is beaten");
        assert_eq!(batched.proposal, None);
        assert!(batched.blocked.contains(2) && batched.blocked.contains(4));

        batched.propose(7);
        batched.observe_round(0);
        assert_eq!(batched.finalized, Some(7));
        // A silent node's key collides with nothing in any palette.
        assert_eq!(TryColorCore::new().proposal_key(), u64::MAX);
    }

    #[test]
    fn candidate_batches_are_distinct_and_sized() {
        let mut rng = round_rng(11, 5, 9);
        for (palette, k) in [(100u64, 4usize), (3, 10), (1, 1), (64, 64)] {
            let batch = sample_candidates(&mut rng, palette, k);
            assert_eq!(batch.len() as u64, (k as u64).min(palette));
            let distinct: HashSet<u64> = batch.iter().copied().collect();
            assert_eq!(distinct.len(), batch.len(), "candidates must be distinct");
            assert!(batch.iter().all(|&c| c < palette));
        }
    }

    #[test]
    fn slack_and_bucketing() {
        assert_eq!(slack(9, 4, 2), 3);
        assert_eq!(slack(4, 4, 1), -1);
        assert_eq!(classify_slack(0, 0), Bucket::Sparse);
        assert_eq!(classify_slack(1, 1), Bucket::Sparse);
        assert_eq!(classify_slack(5, 4), Bucket::Sparse); // a repeat ⇒ slack
        assert_eq!(classify_slack(5, 5), Bucket::Dense); // rainbow ⇒ clique-ish
    }

    #[test]
    fn try_color_core_lifecycle() {
        let mut core = TryColorCore::new();
        assert_eq!(core.take_announcement(), None);
        assert!(!core.retire_after_announce());

        core.propose(3);
        assert!(core.block(3), "blocking the proposal beats it");
        core.resolve(true);
        assert_eq!(core.finalized, None);

        core.propose(5);
        assert!(!core.block(4));
        core.resolve(false);
        assert_eq!(core.finalized, Some(5));
        assert_eq!(core.take_announcement(), Some(5));
        assert_eq!(core.take_announcement(), None, "announce exactly once");
        assert!(core.retire_after_announce());
        assert!(core.halted());
    }
}
