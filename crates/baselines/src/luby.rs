//! Randomized trial coloring (folklore / Luby-style baseline).
//!
//! Every uncolored node samples a uniformly random color from `[Δ+1]` minus
//! the colors of its already-finalised neighbours, announces it, and keeps it
//! if no neighbour announced the same color in the same round.  With high
//! probability every node finalises within `O(log n)` rounds.  This is the
//! randomized counterpart of the paper's deterministic "try colors in
//! batches" idea and is reported as the randomized reference in E6.

use dcme_algebra::logstar::bits_for;
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Messages of the randomized coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyMessage {
    /// A tentative color proposal.
    Propose(u64),
    /// A finalised color announcement.
    Final(u64),
}

impl MessageSize for LubyMessage {
    fn bit_size(&self) -> u64 {
        1 + match self {
            LubyMessage::Propose(c) | LubyMessage::Final(c) => bits_for(c + 1) as u64,
        }
    }
}

impl dcme_congest::WireMessage for LubyMessage {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        let (tag, c) = match self {
            LubyMessage::Propose(c) => (0, *c),
            LubyMessage::Final(c) => (1, *c),
        };
        w.write_bits(tag, 1);
        dcme_congest::wire::write_color(w, c);
        0
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        _aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        let tag = r.read_bits(1)?;
        let c = dcme_congest::wire::read_color(r, bits as u32 - 1)?;
        Ok(if tag == 0 {
            LubyMessage::Propose(c)
        } else {
            LubyMessage::Final(c)
        })
    }
}

struct LubyNode {
    rng: StdRng,
    palette: u64,
    blocked: std::collections::HashSet<u64>,
    proposal: Option<u64>,
    finalized: Option<u64>,
    announced: bool,
    halted: bool,
}

impl NodeAlgorithm for LubyNode {
    type Message = LubyMessage;
    type Output = Option<u64>;

    fn init(&mut self, _ctx: &NodeContext) {}

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<LubyMessage> {
        if let Some(c) = self.finalized {
            if !self.announced {
                self.announced = true;
                return Outbox::Broadcast(LubyMessage::Final(c));
            }
            return Outbox::Silent;
        }
        let available: Vec<u64> = (0..self.palette)
            .filter(|c| !self.blocked.contains(c))
            .collect();
        let choice = available[self.rng.random_range(0..available.len())];
        self.proposal = Some(choice);
        Outbox::Broadcast(LubyMessage::Propose(choice))
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, LubyMessage>) {
        if self.announced {
            self.halted = true;
            return;
        }
        let mut conflict = false;
        for (_, msg) in inbox.iter() {
            match msg {
                LubyMessage::Final(c) => {
                    self.blocked.insert(*c);
                    if self.proposal == Some(*c) {
                        conflict = true;
                    }
                }
                LubyMessage::Propose(c) => {
                    if self.proposal == Some(*c) {
                        conflict = true;
                    }
                }
            }
        }
        if !conflict {
            self.finalized = self.proposal;
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> Option<u64> {
        self.finalized
    }
}

/// Result of the randomized coloring.
#[derive(Debug, Clone)]
pub struct LubyOutcome {
    /// The computed `(Δ+1)`-coloring.
    pub coloring: Coloring,
    /// Round/message accounting.
    pub metrics: RunMetrics,
}

/// Runs the randomized `(Δ+1)`-coloring with the given seed.
///
/// Panics only if the round cap (`8 (log₂ n + 4)` rounds) is exceeded, which
/// for the cap chosen here has negligible probability; the caller can retry
/// with a different seed if needed.
pub fn luby_coloring(topology: &Topology, seed: u64, mode: ExecutionMode) -> LubyOutcome {
    let n = topology.num_nodes();
    let palette = topology.max_degree() as u64 + 1;
    let nodes: Vec<LubyNode> = (0..n)
        .map(|v| LubyNode {
            rng: StdRng::seed_from_u64(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(v as u64),
            ),
            palette,
            blocked: std::collections::HashSet::new(),
            proposal: None,
            finalized: None,
            announced: false,
            halted: false,
        })
        .collect();
    let cap = 8 * ((usize::BITS - n.leading_zeros()) as u64 + 4);
    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: cap.max(32),
            mode,
        },
    );
    let outcome = sim.run(nodes);
    let colors: Vec<u64> = outcome
        .outputs
        .iter()
        .map(|c| c.expect("randomized coloring exceeded its round cap"))
        .collect();
    let coloring = Coloring::new(colors, palette);
    verify::check_proper(topology, &coloring).expect("randomized coloring must be proper");
    LubyOutcome {
        coloring,
        metrics: outcome.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn randomized_coloring_is_proper_and_fast() {
        let g = generators::random_regular(300, 10, 11);
        let out = luby_coloring(&g, 42, ExecutionMode::Sequential);
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(out.coloring.palette() <= g.max_degree() as u64 + 1);
        // O(log n) rounds: generous constant.
        assert!(out.metrics.rounds <= 60, "rounds {}", out.metrics.rounds);
    }

    #[test]
    fn different_seeds_still_produce_proper_colorings() {
        let g = generators::gnp(150, 0.05, 3);
        for seed in 0..5 {
            let out = luby_coloring(&g, seed, ExecutionMode::Sequential);
            verify::check_proper(&g, &out.coloring).unwrap();
        }
    }

    #[test]
    fn works_on_the_complete_graph() {
        let g = generators::complete(10);
        let out = luby_coloring(&g, 7, ExecutionMode::Sequential);
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.coloring.distinct_colors(), 10);
    }
}
