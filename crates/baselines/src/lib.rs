//! Baseline coloring algorithms the paper subsumes or is compared against.
//!
//! * [`greedy`] — the sequential greedy `(Δ+1)`-coloring (the color-count
//!   reference point; zero communication rounds, but inherently sequential).
//! * [`locally_iterative`] — the folklore locally-iterative reduction that
//!   maintains a proper coloring each round and lets local color maxima
//!   recolor into `[Δ+1]`; the self-stabilising style of algorithm that
//!   \[BEG18\] accelerates and that the paper's `k = 1` setting generalises.
//! * [`kuhn_wattenhofer`] — the classical iterated color-space halving
//!   \[KW06\]-style reduction (`O(Δ log(m/Δ))` rounds), built from per-block
//!   class elimination.
//! * [`luby`] — the randomized trial baseline: every uncolored node samples a
//!   random free color from `[Δ+1]` and keeps it if no neighbour picked the
//!   same; `O(log n)` rounds with high probability.
//!
//! plus the **randomized comparison-baseline subsystem** — the modern
//! randomized machinery the source paper positions itself against, running
//! on the same engine, transports and bandwidth accounting:
//!
//! * [`bitset`] — word-at-a-time [`bitset::ColorSet`] palettes: the
//!   blocked/seen-color bookkeeping of every hot path below, as popcount
//!   word scans instead of hashing;
//! * [`rand_primitives`] — shared machinery: stateless per-`(seed, node,
//!   round)` PRNG streams (executor- and transport-independent), the
//!   TryColor core, uniform free-color sampling, palette-sparsified
//!   candidate batches, slack accounting and almost-clique-style bucketing;
//! * [`ultrafast`] — the \[HNT21\] *Ultrafast Distributed Coloring of High
//!   Degree Graphs* structure (arXiv:2105.04700): slack generation →
//!   synchronized color trials → deterministic fallback for low-slack
//!   nodes;
//! * [`degree_plus_one`] — the \[HKNT22\] *Near-Optimal Distributed
//!   Degree+1 Coloring* list baseline (arXiv:2112.00604): every node's
//!   palette is its own `deg(v)+1` colors.
//!
//! These exist so the experiments can report "who wins by what factor": the
//! paper's deterministic pipeline vs. the classical deterministic baselines
//! vs. the randomized folklore vs. the modern randomized state of the art.
//! The randomized algorithms are ordinary [`dcme_congest::NodeAlgorithm`]s
//! with bit-exact [`dcme_congest::WireMessage`] encodings, so they run
//! unchanged on the sequential, pooled and sharded executors and over the
//! socket transports — bit-for-bit, for a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod degree_plus_one;
pub mod greedy;
pub mod kw;
pub mod locally_iterative;
pub mod luby;
pub mod rand_primitives;
pub mod ultrafast;

pub use degree_plus_one::degree_plus_one_coloring;
pub use greedy::greedy_coloring;
pub use kw::kuhn_wattenhofer;
pub use locally_iterative::locally_iterative_reduction;
pub use luby::luby_coloring;
pub use ultrafast::ultrafast_coloring;
