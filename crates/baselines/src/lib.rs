//! Baseline coloring algorithms the paper subsumes or is compared against.
//!
//! * [`greedy`] — the sequential greedy `(Δ+1)`-coloring (the color-count
//!   reference point; zero communication rounds, but inherently sequential).
//! * [`locally_iterative`] — the folklore locally-iterative reduction that
//!   maintains a proper coloring each round and lets local color maxima
//!   recolor into `[Δ+1]`; the self-stabilising style of algorithm that
//!   \[BEG18\] accelerates and that the paper's `k = 1` setting generalises.
//! * [`kuhn_wattenhofer`] — the classical iterated color-space halving
//!   \[KW06\]-style reduction (`O(Δ log(m/Δ))` rounds), built from per-block
//!   class elimination.
//! * [`luby`] — the randomized trial baseline: every uncolored node samples a
//!   random free color from `[Δ+1]` and keeps it if no neighbour picked the
//!   same; `O(log n)` rounds with high probability.
//!
//! These exist so the experiments can report "who wins by what factor": the
//! paper's deterministic pipeline vs. the classical deterministic baselines
//! vs. the randomized folklore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod kw;
pub mod locally_iterative;
pub mod luby;

pub use greedy::greedy_coloring;
pub use kw::kuhn_wattenhofer;
pub use locally_iterative::locally_iterative_reduction;
pub use luby::luby_coloring;
