//! Kuhn–Wattenhofer style iterated color-space halving.
//!
//! The classical deterministic reduction [KW06, BE09]: split the current
//! color space into blocks of `2(Δ+1)` colors, reduce every block to `Δ+1`
//! colors in parallel by class elimination (`Δ+1` rounds per iteration, the
//! blocks being vertex disjoint), and repeat.  The palette halves per
//! iteration, giving `O(Δ · log(m / Δ))` rounds in total — the baseline the
//! paper's `O(Δ/k)`-round `O(kΔ)`-coloring (Corollary 1.2) and the
//! `O(Δ) + log* n` pipeline are measured against.

use dcme_congest::{ExecutionMode, Topology};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::subgraph::InducedSubgraph;
use dcme_graphs::verify;

use dcme_coloring::elimination;
use dcme_coloring::error::ColoringError;

/// Result of the iterated halving.
#[derive(Debug, Clone)]
pub struct KwOutcome {
    /// The final `(Δ+1)`-coloring.
    pub coloring: Coloring,
    /// Number of halving iterations.
    pub iterations: u64,
    /// Total rounds, counting the maximum over parallel blocks per iteration.
    pub rounds: u64,
}

/// Reduces a proper coloring to `Δ+1` colors by iterated block halving.
pub fn kuhn_wattenhofer(topology: &Topology, input: &Coloring) -> Result<KwOutcome, ColoringError> {
    verify::check_proper(topology, input).map_err(ColoringError::ImproperInput)?;
    let delta = topology.max_degree() as u64;
    let target = delta + 1;
    let block_size = 2 * target;

    let mut current = input.clone();
    let mut iterations = 0u64;
    let mut rounds = 0u64;

    while current.palette() > target {
        let palette = current.palette();
        let num_blocks = palette.div_ceil(block_size).max(1);
        let mut new_colors = vec![0u64; topology.num_nodes()];
        let mut iteration_rounds = 0u64;

        for block in 0..num_blocks {
            let lo = block * block_size;
            let hi = (lo + block_size).min(palette);
            let members: Vec<usize> = (0..topology.num_nodes())
                .filter(|&v| current.color(v) >= lo && current.color(v) < hi)
                .collect();
            if members.is_empty() {
                continue;
            }
            let sub = InducedSubgraph::extract(topology, &members);
            let sub_input = Coloring::new(
                sub.original
                    .iter()
                    .map(|&v| current.color(v) - lo)
                    .collect(),
                hi - lo,
            );
            let (reduced, metrics) = elimination::reduce_to_target(
                &sub.topology,
                &sub_input,
                target.max(sub.topology.max_degree() as u64 + 1),
                ExecutionMode::Sequential,
            )?;
            iteration_rounds = iteration_rounds.max(metrics.rounds);
            for (i, &v) in sub.original.iter().enumerate() {
                new_colors[v] = block * target + reduced.color(i);
            }
        }

        iterations += 1;
        rounds += iteration_rounds;
        let next = Coloring::new(new_colors, num_blocks * target);
        verify::check_proper(topology, &next).map_err(ColoringError::PostconditionFailed)?;
        if next.palette() >= current.palette() {
            // Only possible when the palette is already within one block of
            // the target; finish with a plain elimination.
            let (fin, metrics) = elimination::reduce_to_target(
                topology,
                &current,
                target,
                ExecutionMode::Sequential,
            )?;
            rounds += metrics.rounds;
            return Ok(KwOutcome {
                coloring: fin,
                iterations,
                rounds,
            });
        }
        current = next;
    }

    Ok(KwOutcome {
        coloring: current,
        iterations,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn halving_reaches_delta_plus_one() {
        let g = generators::random_regular(200, 8, 5);
        let input = Coloring::from_ids(200);
        let out = kuhn_wattenhofer(&g, &input).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.coloring.palette(), g.max_degree() as u64 + 1);
        // iterations ≈ log2(m / Δ).
        assert!(
            out.iterations >= 3 && out.iterations <= 8,
            "{}",
            out.iterations
        );
    }

    #[test]
    fn round_cost_scales_with_delta_times_log() {
        let g = generators::random_regular(300, 12, 6);
        let input = Coloring::from_ids(300);
        let out = kuhn_wattenhofer(&g, &input).unwrap();
        let delta = g.max_degree() as u64;
        let log_factor = 64 - (300u64 / delta).leading_zeros() as u64;
        assert!(
            out.rounds <= 3 * delta * (log_factor + 2),
            "rounds {} too large",
            out.rounds
        );
    }

    #[test]
    fn small_palette_is_noop() {
        let g = generators::ring(12);
        let c = Coloring::new((0..12).map(|v| (v % 3) as u64).collect(), 3);
        let out = kuhn_wattenhofer(&g, &c).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.coloring, c);
    }
}
