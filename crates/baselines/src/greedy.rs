//! Sequential greedy coloring — the `(Δ+1)` color-count reference.

use dcme_congest::Topology;
use dcme_graphs::coloring::Coloring;

/// Colors the graph greedily in the given vertex order (or `0..n` if `None`),
/// assigning each vertex the smallest color unused by its already-colored
/// neighbours.  Uses at most `Δ+1` colors.
pub fn greedy_coloring(topology: &Topology, order: Option<&[usize]>) -> Coloring {
    let n = topology.num_nodes();
    let default_order: Vec<usize> = (0..n).collect();
    let order = order.unwrap_or(&default_order);
    assert_eq!(order.len(), n, "order must be a permutation of the nodes");

    let mut colors: Vec<Option<u64>> = vec![None; n];
    for &v in order {
        let used: std::collections::HashSet<u64> = topology
            .neighbors(v)
            .iter()
            .filter_map(|&u| colors[u])
            .collect();
        let c = (0..).find(|c| !used.contains(c)).expect("infinite palette");
        colors[v] = Some(c);
    }
    let colors: Vec<u64> = colors.into_iter().map(|c| c.unwrap()).collect();
    let palette =
        (topology.max_degree() as u64 + 1).max(colors.iter().copied().max().unwrap_or(0) + 1);
    Coloring::new(colors, palette)
}

/// A degeneracy (smallest-last) ordering: repeatedly remove a minimum-degree
/// vertex; coloring greedily in the reverse removal order uses at most
/// `degeneracy + 1` colors.
pub fn smallest_last_order(topology: &Topology) -> Vec<usize> {
    let n = topology.num_nodes();
    let mut degree: Vec<usize> = (0..n).map(|v| topology.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .expect("nodes remain");
        removed[v] = true;
        order.push(v);
        for &u in topology.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::{generators, verify};

    #[test]
    fn greedy_is_proper_and_within_delta_plus_one() {
        for g in [
            generators::ring(21),
            generators::complete(7),
            generators::random_regular(200, 10, 3),
            generators::gnp(100, 0.1, 9),
        ] {
            let c = greedy_coloring(&g, None);
            verify::check_proper(&g, &c).unwrap();
            assert!(c.distinct_colors() as u64 <= g.max_degree() as u64 + 1);
        }
    }

    #[test]
    fn smallest_last_helps_on_trees() {
        let g = generators::random_tree(200, 5);
        let order = smallest_last_order(&g);
        let c = greedy_coloring(&g, Some(&order));
        verify::check_proper(&g, &c).unwrap();
        // Trees are 1-degenerate: 2 colors suffice with the smallest-last order.
        assert!(c.distinct_colors() <= 2);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn order_must_cover_all_nodes() {
        let g = generators::ring(5);
        let _ = greedy_coloring(&g, Some(&[0, 1]));
    }
}
