//! The \[HKNT22\] *Near-Optimal Distributed Degree+1 Coloring*
//! (arXiv:2112.00604) list-coloring baseline (D1LC).
//!
//! Every node's palette is its **own** `deg(v) + 1` colors `{0, …, deg(v)}`
//! — strictly harder than `(Δ+1)`-coloring, because low-degree nodes get no
//! help from the global maximum degree.  The invariant that makes the
//! problem solvable is the same as in the paper: a node can lose at most
//! `deg(v)` colors to finalised neighbours, so its list is never exhausted.
//!
//! The baseline runs the paper's core randomized step in every round: each
//! uncolored node draws one **uniform** color from its remaining list (the
//! stateless `(seed, node, round)` streams of
//! [`crate::rand_primitives::round_rng`]) and keeps it unless a smaller-id
//! neighbour proposed the same color or a neighbour just finalised it.  The
//! unique-id tie-break is what replaces the paper's `O(log³ log n)`
//! machinery (slack generation + almost-clique handling for the dense
//! parts): it degrades gracefully — random lists rarely collide, so almost
//! every node finalises in `O(1)` expected rounds, while the id order makes
//! the id-minimum active node succeed *every* round, bounding the run
//! unconditionally without any extra phases.
//!
//! The message shape (`Propose {color, priority}` / `Finalized {color}`)
//! deliberately mirrors `dcme_coloring::list::ListMessage` — this is the
//! randomized counterpart of that deterministic routine, with the proposal
//! drawn uniformly instead of smallest-first and the priority fixed to the
//! node id.

use dcme_algebra::logstar::bits_for;
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;

use crate::rand_primitives::{round_rng, uniform_free_color, TryColorCore};

/// Messages of the degree+1 list coloring (the randomized mirror of
/// `dcme_coloring::list::ListMessage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum D1Message {
    /// "I propose `color`; my tie-break priority is `priority`."
    Propose {
        /// the proposed color
        color: u64,
        /// the sender's unique id (smaller wins)
        priority: u64,
    },
    /// "I have finalised `color`."
    Finalized {
        /// the final color
        color: u64,
    },
}

impl MessageSize for D1Message {
    fn bit_size(&self) -> u64 {
        1 + match self {
            D1Message::Propose { color, priority } => {
                bits_for(color + 1) as u64 + bits_for(priority + 1) as u64
            }
            D1Message::Finalized { color } => bits_for(color + 1) as u64,
        }
    }
}

impl dcme_congest::WireMessage for D1Message {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        match self {
            // Two variable-width fields: the color width travels in the aux
            // framing byte so the decoder knows where to split the payload.
            D1Message::Propose { color, priority } => {
                w.write_bits(0, 1);
                dcme_congest::wire::write_color(w, *color);
                dcme_congest::wire::write_color(w, *priority);
                dcme_congest::wire::color_width(*color) as u8
            }
            D1Message::Finalized { color } => {
                w.write_bits(1, 1);
                dcme_congest::wire::write_color(w, *color);
                0
            }
        }
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        let tag = r.read_bits(1)?;
        let rest = bits as u32 - 1;
        if tag == 1 {
            let color = dcme_congest::wire::read_color(r, rest)?;
            Ok(D1Message::Finalized { color })
        } else {
            let color_bits = aux as u32;
            if color_bits == 0 || color_bits >= rest {
                return Err(dcme_congest::WireError::BadLength {
                    len: color_bits as usize,
                    limit: rest.saturating_sub(1) as usize,
                });
            }
            let color = dcme_congest::wire::read_color(r, color_bits)?;
            let priority = dcme_congest::wire::read_color(r, rest - color_bits)?;
            Ok(D1Message::Propose { color, priority })
        }
    }
}

/// A generous unconditional round cap: the id tie-break finalises at least
/// one node per two rounds in the worst (chain) case.
pub fn round_cap(n: usize) -> u64 {
    2 * n as u64 + 16
}

/// The per-node state machine of the degree+1 list coloring.
#[derive(Clone)]
pub struct DegreePlusOneNode {
    seed: u64,
    id: u64,
    /// `deg(v) + 1`: the size of this node's own color list `{0..=deg(v)}`.
    list_len: u64,
    core: TryColorCore,
}

impl DegreePlusOneNode {
    /// Creates the state machine; id and list length are derived from the
    /// [`NodeContext`] in `init`, so one constructor works on every executor
    /// and in every worker process.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            id: 0,
            list_len: 1,
            core: TryColorCore::new(),
        }
    }
}

impl NodeAlgorithm for DegreePlusOneNode {
    type Message = D1Message;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeContext) {
        self.id = ctx.node as u64;
        self.list_len = ctx.degree as u64 + 1;
    }

    fn send(&mut self, ctx: &NodeContext) -> Outbox<D1Message> {
        if let Some(color) = self.core.take_announcement() {
            return Outbox::Broadcast(D1Message::Finalized { color });
        }
        if self.core.finalized.is_some() {
            // Unreachable: the node halts at the end of its announce round.
            return Outbox::Silent;
        }
        let mut rng = round_rng(self.seed, self.id, ctx.round);
        let color = uniform_free_color(&mut rng, self.list_len, &self.core.blocked)
            .expect("a deg+1 list cannot be exhausted by at most deg finalised neighbours");
        self.core.propose(color);
        Outbox::Broadcast(D1Message::Propose {
            color,
            priority: self.id,
        })
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, D1Message>) {
        if self.core.retire_after_announce() {
            return;
        }
        // Branchless verdict accumulation: compare every message against
        // the hoisted proposal key and fold `hit & priority` bits into one
        // mask instead of branching per message (see `TryColorCore`).
        let key = self.core.proposal_key();
        let mut beaten = 0u64;
        for (_, msg) in inbox.iter() {
            match msg {
                D1Message::Finalized { color } => {
                    beaten |= self.core.block_mask(*color);
                }
                D1Message::Propose { color, priority } => {
                    beaten |= u64::from(*color == key) & u64::from(*priority < self.id);
                }
            }
        }
        self.core.observe_round(beaten);
    }

    fn is_halted(&self) -> bool {
        self.core.halted()
    }

    fn output(&self) -> Option<u64> {
        self.core.finalized
    }
}

impl dcme_congest::mc::CheckableAlgorithm for DegreePlusOneNode {
    fn committed_color(&self) -> Option<u64> {
        self.core.finalized
    }
}

/// Result of a degree+1 list-coloring run.
#[derive(Debug, Clone)]
pub struct DegreePlusOneOutcome {
    /// The computed coloring; node `v`'s color is in `{0..=deg(v)}`.
    pub coloring: Coloring,
    /// Round/message accounting.
    pub metrics: RunMetrics,
}

/// Runs the randomized degree+1 list coloring with the given seed.
///
/// The postcondition is checked with the same list verifier the
/// deterministic `dcme_coloring::list` routine uses: the coloring is proper
/// *and* every node's color is inside its own `deg(v)+1` list.
///
/// # Panics
///
/// Panics only if the unconditional [`round_cap`] is exceeded, which the id
/// tie-break's guaranteed progress makes impossible short of an
/// implementation bug.
pub fn degree_plus_one_coloring(
    topology: &Topology,
    seed: u64,
    mode: ExecutionMode,
) -> DegreePlusOneOutcome {
    let n = topology.num_nodes();
    let nodes: Vec<DegreePlusOneNode> = (0..n).map(|_| DegreePlusOneNode::new(seed)).collect();
    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: round_cap(n).max(32),
            mode,
        },
    );
    let outcome = sim.run(nodes);
    let colors: Vec<u64> = outcome
        .outputs
        .iter()
        .map(|c| c.expect("degree+1 coloring exceeded its unconditional round cap"))
        .collect();
    let coloring = Coloring::new(colors, u64::from(topology.max_degree()) + 1);
    let lists: Vec<Vec<u64>> = (0..n)
        .map(|v| (0..=topology.degree(v) as u64).collect())
        .collect();
    verify::check_list_coloring(topology, &coloring, &lists)
        .expect("degree+1 coloring must be proper and within every node's list");
    DegreePlusOneOutcome {
        coloring,
        metrics: outcome.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn colors_stay_within_each_nodes_own_degree_list() {
        let g = generators::gnp(250, 0.03, 5);
        let out = degree_plus_one_coloring(&g, 42, ExecutionMode::Sequential);
        for v in 0..250 {
            assert!(
                out.coloring.color(v) <= g.degree(v) as u64,
                "node {v} (deg {}) got color {}",
                g.degree(v),
                out.coloring.color(v)
            );
        }
    }

    #[test]
    fn converges_fast_on_regular_graphs() {
        let g = generators::random_regular(300, 10, 11);
        let out = degree_plus_one_coloring(&g, 1, ExecutionMode::Sequential);
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(out.metrics.rounds <= 60, "rounds {}", out.metrics.rounds);
    }

    #[test]
    fn fixed_seed_runs_are_bit_identical() {
        let g = generators::random_regular(200, 8, 23);
        let a = degree_plus_one_coloring(&g, 9, ExecutionMode::Sequential);
        let b = degree_plus_one_coloring(&g, 9, ExecutionMode::Sequential);
        assert_eq!(a.coloring.colors(), b.coloring.colors());
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.metrics.total_bits, b.metrics.total_bits);
    }

    #[test]
    fn survives_adversarial_small_graphs() {
        // The complete graph is the degree+1 worst case (zero slack
        // everywhere: every node's list is exactly the palette).
        for g in [
            generators::complete(12),
            generators::star(20),
            generators::path(40),
            generators::empty(5),
        ] {
            let out = degree_plus_one_coloring(&g, 5, ExecutionMode::Sequential);
            verify::check_proper(&g, &out.coloring).unwrap();
        }
    }

    #[test]
    fn parallel_executor_matches_sequential() {
        let g = generators::random_regular(120, 6, 31);
        let seq = degree_plus_one_coloring(&g, 3, ExecutionMode::Sequential);
        let par = degree_plus_one_coloring(&g, 3, ExecutionMode::Parallel { threads: 4 });
        assert_eq!(seq.coloring.colors(), par.coloring.colors());
        assert_eq!(seq.metrics.rounds, par.metrics.rounds);
        assert_eq!(seq.metrics.messages, par.metrics.messages);
    }

    #[test]
    fn message_size_accounting() {
        let m = D1Message::Propose {
            color: 3,
            priority: 7,
        };
        assert_eq!(m.bit_size(), 1 + 2 + 3);
        assert_eq!(D1Message::Finalized { color: 0 }.bit_size(), 2);
    }
}
