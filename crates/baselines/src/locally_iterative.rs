//! The folklore locally-iterative color reduction.
//!
//! Starting from any proper coloring, every round each node whose color is
//! `≥ Δ+1` **and** is a local maximum among its neighbours' current colors
//! recolors itself to the smallest color of `[Δ+1]` unused in its
//! neighbourhood.  The coloring stays proper after every round (only local
//! maxima move, and they move below all recoloring thresholds of their
//! neighbours), which is the defining feature of locally-iterative algorithms
//! in the sense of \[BEG18\].  The number of rounds is bounded by the number of
//! distinct colors above `Δ`, i.e. `O(m)` — the pre-BEG18 state of affairs
//! that both \[BEG18\] and the paper's `k = 1` algorithm improve to `O(Δ)`.

use dcme_algebra::logstar::bits_for;
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;

/// Message carrying the sender's current color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorMsg(pub u64);

impl MessageSize for ColorMsg {
    fn bit_size(&self) -> u64 {
        bits_for(self.0 + 1) as u64
    }
}

impl dcme_congest::WireMessage for ColorMsg {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        dcme_congest::wire::write_color(w, self.0);
        0
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        _aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        dcme_congest::wire::read_color(r, bits as u32).map(ColorMsg)
    }
}

struct IterativeNode {
    color: u64,
    target: u64,
    done: bool,
}

impl NodeAlgorithm for IterativeNode {
    type Message = ColorMsg;
    type Output = u64;

    fn init(&mut self, _ctx: &NodeContext) {}

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<ColorMsg> {
        Outbox::Broadcast(ColorMsg(self.color))
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, ColorMsg>) {
        let neighbor_colors: Vec<u64> = inbox.iter().map(|(_, m)| m.0).collect();
        if self.color >= self.target && neighbor_colors.iter().all(|&c| c < self.color) {
            let used: std::collections::HashSet<u64> = neighbor_colors.iter().copied().collect();
            self.color = (0..self.target)
                .find(|c| !used.contains(c))
                .expect("at most Δ neighbours");
        }
        // A node is finished once it and all its neighbours are below the
        // target; it cannot detect the latter without more rounds, so it
        // simply keeps participating while any neighbour is still high.
        self.done = self.color < self.target && neighbor_colors.iter().all(|&c| c < self.target);
    }

    fn is_halted(&self) -> bool {
        self.done
    }

    fn output(&self) -> u64 {
        self.color
    }
}

/// Runs the locally-iterative reduction from `input` down to a
/// `(Δ+1)`-coloring.  Returns the coloring and the round metrics.
pub fn locally_iterative_reduction(
    topology: &Topology,
    input: &Coloring,
    mode: ExecutionMode,
) -> (Coloring, RunMetrics) {
    verify::check_proper(topology, input).expect("input must be proper");
    let target = topology.max_degree() as u64 + 1;
    let nodes: Vec<IterativeNode> = (0..topology.num_nodes())
        .map(|v| IterativeNode {
            color: input.color(v),
            target,
            done: false,
        })
        .collect();
    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: input.palette() + topology.num_nodes() as u64 + 4,
            mode,
        },
    );
    let outcome = sim.run(nodes);
    let coloring = Coloring::new(outcome.outputs, target);
    verify::check_proper(topology, &coloring).expect("locally-iterative output must be proper");
    (coloring, outcome.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn reduces_ids_to_delta_plus_one() {
        let g = generators::random_regular(120, 6, 7);
        let input = Coloring::from_ids(120);
        let (out, metrics) = locally_iterative_reduction(&g, &input, ExecutionMode::Sequential);
        verify::check_proper(&g, &out).unwrap();
        assert!(out.palette() <= g.max_degree() as u64 + 1);
        assert!(metrics.rounds >= 1);
        assert!(!metrics.hit_round_cap);
    }

    #[test]
    fn needs_many_more_rounds_than_the_papers_pipeline_shape() {
        // On a long path with decreasing ids the local-maximum rule recolors
        // one node per round: Ω(n) rounds — the behaviour the paper's O(Δ)
        // algorithm avoids.
        let n = 60;
        let g = generators::path(n);
        let ids: Vec<u64> = (0..n as u64).collect();
        let input = Coloring::from_identifiers(&ids, n as u64);
        let (out, metrics) = locally_iterative_reduction(&g, &input, ExecutionMode::Sequential);
        verify::check_proper(&g, &out).unwrap();
        assert!(
            metrics.rounds as usize >= n / 2,
            "rounds {}",
            metrics.rounds
        );
    }

    #[test]
    fn already_small_coloring_converges_quickly() {
        let g = generators::ring(30);
        let c = Coloring::new(
            (0..30)
                .map(|v| (v % 2) as u64 + if v == 29 { 2 } else { 0 })
                .collect(),
            4,
        );
        let (out, metrics) = locally_iterative_reduction(&g, &c, ExecutionMode::Sequential);
        verify::check_proper(&g, &out).unwrap();
        assert!(metrics.rounds <= 3);
    }
}
