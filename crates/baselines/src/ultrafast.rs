//! The \[HNT21\] *Ultrafast Distributed Coloring of High Degree Graphs*
//! (arXiv:2105.04700) structure, as a `(Δ+1)`-coloring baseline.
//!
//! The paper's round structure — not its `O(log³ log n)` analysis — is what
//! is reproduced here, phase for phase:
//!
//! 1. **Slack generation** (round 0): each node independently participates
//!    with constant probability and tries one uniform color from `[Δ+1]`.
//!    Same-colored neighbour pairs "burn" a color together, creating
//!    permanent slack for everyone adjacent to the pair.  The observations
//!    of this round also drive the almost-clique-style bucketing
//!    ([`crate::rand_primitives::classify_slack`]): a node that witnessed a repeat
//!    is provably next to slack and keeps gambling; a node whose sampled
//!    neighbourhood was rainbow-like is treated as an almost-clique member.
//! 2. **Synchronized color trials** (rounds `1..T`, `T = O(log log n)`):
//!    slack-blessed nodes draw a sparsified candidate batch
//!    ([`crate::rand_primitives::sample_candidates`]) and try its first free
//!    color; ties are symmetric (all proposers of a contested color fail),
//!    exactly the TryColor step whose per-round success probability the
//!    slack argument amplifies.
//! 3. **Fallback** (dense nodes immediately; everyone from round `T`):
//!    the deterministic low-slack completion — propose the smallest free
//!    color, lose only to a smaller-id proposer of the same color.  A
//!    fallback proposal also outranks every same-round random trial, so
//!    the fallback set always makes progress (its id-minimum succeeds every
//!    round), which bounds the run unconditionally — the randomized phases
//!    only ever *accelerate* termination, they cannot endanger it.
//!
//! All randomness is drawn from the stateless `(seed, node, round)` streams
//! of [`crate::rand_primitives::round_rng`], so a fixed seed produces bit-identical
//! runs on every executor and transport backend (pinned by
//! `tests/executor_equivalence.rs`).

use dcme_algebra::logstar::{bits_for, ceil_log2};
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;
use rand::distr::Bernoulli;
use rand::RngExt;

use crate::bitset::ColorSet;
use crate::rand_primitives::{
    classify_slack, round_rng, sample_candidates, uniform_free_color, Bucket, TryColorCore,
};

/// Participation probability of the slack-generation round.
const SLACK_PARTICIPATION: f64 = 0.25;

/// Size of the sparsified candidate batch of a synchronized trial.
const TRIAL_CANDIDATES: usize = 4;

/// Messages of the ultrafast structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UltrafastMessage {
    /// A random color trial (slack generation or synchronized trial);
    /// contested trials fail symmetrically.
    Try {
        /// the tried color
        color: u64,
    },
    /// A finalised color announcement.
    Adopt {
        /// the adopted color
        color: u64,
    },
    /// A deterministic fallback proposal; outranks every same-round `Try`
    /// and loses only to a smaller-id fallback proposal of the same color.
    Fallback {
        /// the proposed color
        color: u64,
        /// the sender's unique id (smaller wins)
        id: u64,
    },
}

impl MessageSize for UltrafastMessage {
    fn bit_size(&self) -> u64 {
        2 + match self {
            UltrafastMessage::Try { color } | UltrafastMessage::Adopt { color } => {
                bits_for(color + 1) as u64
            }
            UltrafastMessage::Fallback { color, id } => {
                bits_for(color + 1) as u64 + bits_for(id + 1) as u64
            }
        }
    }
}

impl dcme_congest::WireMessage for UltrafastMessage {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        match self {
            UltrafastMessage::Try { color } => {
                w.write_bits(0, 2);
                dcme_congest::wire::write_color(w, *color);
                0
            }
            UltrafastMessage::Adopt { color } => {
                w.write_bits(1, 2);
                dcme_congest::wire::write_color(w, *color);
                0
            }
            // Two variable-width fields: the color width travels in the aux
            // framing byte so the decoder knows where to split the payload.
            UltrafastMessage::Fallback { color, id } => {
                w.write_bits(2, 2);
                dcme_congest::wire::write_color(w, *color);
                dcme_congest::wire::write_color(w, *id);
                dcme_congest::wire::color_width(*color) as u8
            }
        }
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        let tag = r.read_bits(2)?;
        let rest = bits as u32 - 2;
        match tag {
            0 | 1 => {
                let color = dcme_congest::wire::read_color(r, rest)?;
                Ok(if tag == 0 {
                    UltrafastMessage::Try { color }
                } else {
                    UltrafastMessage::Adopt { color }
                })
            }
            2 => {
                let color_bits = aux as u32;
                if color_bits == 0 || color_bits >= rest {
                    return Err(dcme_congest::WireError::BadLength {
                        len: color_bits as usize,
                        limit: rest.saturating_sub(1) as usize,
                    });
                }
                let color = dcme_congest::wire::read_color(r, color_bits)?;
                let id = dcme_congest::wire::read_color(r, rest - color_bits)?;
                Ok(UltrafastMessage::Fallback { color, id })
            }
            other => Err(dcme_congest::WireError::BadTag(other)),
        }
    }
}

/// What a node broadcast this round (drives the asymmetric conflict rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SentKind {
    Nothing,
    Try,
    Fallback,
}

/// The round index from which every still-active node runs the fallback:
/// 1 slack-generation round plus an `O(log log n)` synchronized-trial phase.
pub fn trial_phase_end(n: usize) -> u64 {
    let lg = u64::from(ceil_log2(n as u64 + 2));
    1 + 4 + 2 * u64::from(ceil_log2(lg + 2))
}

/// A generous unconditional round cap: the trial phases plus a worst-case
/// sequential fallback chain (one finalisation per two rounds) plus the
/// announce slack.  Real runs finish orders of magnitude earlier.
pub fn round_cap(n: usize) -> u64 {
    trial_phase_end(n) + 2 * n as u64 + 16
}

/// The per-node state machine of the ultrafast structure.
#[derive(Clone)]
pub struct UltrafastNode {
    seed: u64,
    id: u64,
    palette: u64,
    trials_end: u64,
    bucket: Bucket,
    sent: SentKind,
    core: TryColorCore,
}

impl UltrafastNode {
    /// Creates the state machine; everything else (id, palette `Δ+1`, phase
    /// lengths) is derived from the [`NodeContext`] in `init`, so one
    /// constructor works on every executor and in every worker process.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            id: 0,
            palette: 1,
            trials_end: 1,
            bucket: Bucket::Sparse,
            sent: SentKind::Nothing,
            core: TryColorCore::new(),
        }
    }

    fn smallest_free(&self) -> u64 {
        self.core
            .blocked
            .find_first_free(self.palette)
            .expect("a [Δ+1] palette cannot be exhausted by < Δ+1 finalised neighbours")
    }
}

impl NodeAlgorithm for UltrafastNode {
    type Message = UltrafastMessage;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeContext) {
        self.id = ctx.node as u64;
        self.palette = u64::from(ctx.max_degree) + 1;
        self.trials_end = trial_phase_end(ctx.n);
    }

    fn send(&mut self, ctx: &NodeContext) -> Outbox<UltrafastMessage> {
        if let Some(color) = self.core.take_announcement() {
            self.sent = SentKind::Nothing;
            return Outbox::Broadcast(UltrafastMessage::Adopt { color });
        }
        if self.core.finalized.is_some() {
            // Unreachable: the node halts at the end of its announce round.
            return Outbox::Silent;
        }
        let mut rng = round_rng(self.seed, self.id, ctx.round);
        if ctx.round == 0 {
            // Phase 1: slack generation.
            let participates = rng.sample(
                Bernoulli::new(SLACK_PARTICIPATION).expect("constant probability is valid"),
            );
            if !participates {
                self.core.clear_proposal();
                self.sent = SentKind::Nothing;
                return Outbox::Silent;
            }
            let color = self.core.propose(rng.random_range(0..self.palette));
            self.sent = SentKind::Try;
            Outbox::Broadcast(UltrafastMessage::Try { color })
        } else if ctx.round < self.trials_end && self.bucket == Bucket::Sparse {
            // Phase 2: synchronized trial over a sparsified candidate batch.
            let color = sample_candidates(&mut rng, self.palette, TRIAL_CANDIDATES)
                .into_iter()
                .find(|&c| !self.core.blocked.contains(c))
                .unwrap_or_else(|| {
                    uniform_free_color(&mut rng, self.palette, &self.core.blocked)
                        .expect("a [Δ+1] palette always has a free color")
                });
            self.core.propose(color);
            self.sent = SentKind::Try;
            Outbox::Broadcast(UltrafastMessage::Try { color })
        } else {
            // Phase 3: deterministic fallback for low-slack nodes.
            let color = self.core.propose(self.smallest_free());
            self.sent = SentKind::Fallback;
            Outbox::Broadcast(UltrafastMessage::Fallback { color, id: self.id })
        }
    }

    fn receive(&mut self, ctx: &NodeContext, inbox: &Inbox<'_, UltrafastMessage>) {
        if self.core.retire_after_announce() {
            return;
        }
        // Branchless verdict accumulation: the proposal and what-we-sent
        // become comparison masks hoisted out of the loop, and every
        // message contributes `hit & rank` bits to one accumulator
        // instead of steering its own conditional chain.  A fallback
        // proposal outranks every random trial; contested random trials
        // fail symmetrically; competing fallbacks break the tie by id.
        let key = self.core.proposal_key();
        let sent_try = u64::from(self.sent == SentKind::Try);
        let sent_fallback = u64::from(self.sent == SentKind::Fallback);
        let mut beaten = 0u64;
        let (mut tried, mut distinct) = (0usize, 0usize);
        let mut seen_round0 = ColorSet::with_palette(self.palette);
        for (_, msg) in inbox.iter() {
            match msg {
                UltrafastMessage::Adopt { color } => {
                    beaten |= self.core.block_mask(*color);
                }
                UltrafastMessage::Try { color } => {
                    if ctx.round == 0 {
                        tried += 1;
                        distinct += usize::from(seen_round0.insert(*color));
                    }
                    beaten |= u64::from(*color == key) & sent_try;
                }
                UltrafastMessage::Fallback { color, id } => {
                    let outranked = sent_try | (sent_fallback & u64::from(*id < self.id));
                    beaten |= u64::from(*color == key) & outranked;
                }
            }
        }
        if ctx.round == 0 {
            self.bucket = classify_slack(tried, distinct);
        }
        self.core.observe_round(beaten);
    }

    fn is_halted(&self) -> bool {
        self.core.halted()
    }

    fn output(&self) -> Option<u64> {
        self.core.finalized
    }
}

impl dcme_congest::mc::CheckableAlgorithm for UltrafastNode {
    fn committed_color(&self) -> Option<u64> {
        self.core.finalized
    }
}

/// Result of an ultrafast run.
#[derive(Debug, Clone)]
pub struct UltrafastOutcome {
    /// The computed `(Δ+1)`-coloring.
    pub coloring: Coloring,
    /// Round/message accounting.
    pub metrics: RunMetrics,
}

/// Runs the ultrafast `(Δ+1)`-coloring with the given seed.
///
/// # Panics
///
/// Panics only if the unconditional [`round_cap`] is exceeded, which the
/// fallback phase's guaranteed progress makes impossible short of an
/// implementation bug (the postcondition check would catch an improper
/// output the same way).
pub fn ultrafast_coloring(topology: &Topology, seed: u64, mode: ExecutionMode) -> UltrafastOutcome {
    let n = topology.num_nodes();
    let palette = u64::from(topology.max_degree()) + 1;
    let nodes: Vec<UltrafastNode> = (0..n).map(|_| UltrafastNode::new(seed)).collect();
    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: round_cap(n).max(32),
            mode,
        },
    );
    let outcome = sim.run(nodes);
    let colors: Vec<u64> = outcome
        .outputs
        .iter()
        .map(|c| c.expect("ultrafast coloring exceeded its unconditional round cap"))
        .collect();
    let coloring = Coloring::new(colors, palette);
    verify::check_proper(topology, &coloring).expect("ultrafast coloring must be proper");
    UltrafastOutcome {
        coloring,
        metrics: outcome.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn produces_a_proper_delta_plus_one_coloring_quickly() {
        let g = generators::random_regular(300, 10, 11);
        let out = ultrafast_coloring(&g, 42, ExecutionMode::Sequential);
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(out.coloring.palette() <= u64::from(g.max_degree()) + 1);
        // Far under the unconditional cap: the trials + fallback converge
        // in a few dozen rounds on graphs this size.
        assert!(out.metrics.rounds <= 80, "rounds {}", out.metrics.rounds);
    }

    #[test]
    fn fixed_seed_runs_are_bit_identical() {
        let g = generators::gnp(200, 0.04, 9);
        let a = ultrafast_coloring(&g, 7, ExecutionMode::Sequential);
        let b = ultrafast_coloring(&g, 7, ExecutionMode::Sequential);
        assert_eq!(a.coloring.colors(), b.coloring.colors());
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.metrics.total_bits, b.metrics.total_bits);
    }

    #[test]
    fn different_seeds_still_produce_proper_colorings() {
        let g = generators::random_regular(150, 8, 3);
        for seed in 0..5 {
            let out = ultrafast_coloring(&g, seed, ExecutionMode::Sequential);
            verify::check_proper(&g, &out.coloring).unwrap();
        }
    }

    #[test]
    fn survives_adversarial_small_graphs() {
        for g in [
            generators::complete(12),
            generators::star(20),
            generators::path(40),
            generators::empty(5),
        ] {
            let out = ultrafast_coloring(&g, 5, ExecutionMode::Sequential);
            verify::check_proper(&g, &out.coloring).unwrap();
        }
    }

    #[test]
    fn parallel_executor_matches_sequential() {
        let g = generators::random_regular(120, 6, 21);
        let seq = ultrafast_coloring(&g, 3, ExecutionMode::Sequential);
        let par = ultrafast_coloring(&g, 3, ExecutionMode::Parallel { threads: 4 });
        assert_eq!(seq.coloring.colors(), par.coloring.colors());
        assert_eq!(seq.metrics.rounds, par.metrics.rounds);
        assert_eq!(seq.metrics.messages, par.metrics.messages);
    }

    #[test]
    fn phase_schedule_grows_doubly_logarithmically() {
        assert!(trial_phase_end(10) <= trial_phase_end(1 << 20));
        assert!(
            trial_phase_end(1 << 20) <= 16,
            "trials phase must stay O(log log n)-sized"
        );
        assert!(round_cap(100) > trial_phase_end(100));
    }

    #[test]
    fn message_size_accounting() {
        assert_eq!(UltrafastMessage::Try { color: 255 }.bit_size(), 2 + 8);
        assert_eq!(UltrafastMessage::Adopt { color: 0 }.bit_size(), 3);
        assert_eq!(
            UltrafastMessage::Fallback { color: 3, id: 7 }.bit_size(),
            2 + 2 + 3
        );
    }
}
