//! Word-at-a-time color-set bookkeeping for the randomized baselines.
//!
//! [`ColorSet`] is a growable `u64`-word bitmap over color ids, the
//! raw-speed replacement for the `HashSet<u64>` the TryColor machinery
//! used to track blocked colors with.  Every operation the hot paths
//! need — membership, first-free, `n`-th-free, free counts below a
//! palette bound — runs as a word scan with `trailing_ones` /
//! `count_ones` instead of per-color hashing, so a `[Δ+1]` palette of a
//! few thousand colors costs a few dozen word operations rather than a
//! few thousand hash probes.
//!
//! Two properties the callers rely on:
//!
//! * **Growable past the palette.** A degree+1 list node can be told
//!   about neighbour colors far above its own `deg(v)+1` list (the
//!   neighbour's list is larger), so [`ColorSet::insert`] grows the
//!   bitmap on demand and the palette-bounded queries take the bound as
//!   an explicit argument.
//! * **Order equivalence with the sorted free list.** `nth_free(p, i)`
//!   returns the `i`-th smallest free color below `p` — exactly
//!   `free[i]` of the materialised `Vec<u64>` the dense fallback of
//!   `uniform_free_color` used to build, which is what keeps the
//!   replacement bit-exact without allocating.

/// A set of color ids stored as a `u64`-word bitmap.
///
/// Colors are small non-negative integers (palette indices), so the
/// bitmap stays tiny: `Δ+1` colors occupy `⌈(Δ+1)/64⌉` words.
#[derive(Debug, Clone, Default)]
pub struct ColorSet {
    words: Vec<u64>,
}

const WORD_BITS: u64 = 64;

/// The index of the `n`-th set bit of `word` (`n < word.count_ones()`).
#[inline]
fn select_bit(mut word: u64, n: u64) -> u64 {
    debug_assert!(n < u64::from(word.count_ones()));
    for _ in 0..n {
        word &= word - 1; // clear the lowest set bit
    }
    u64::from(word.trailing_zeros())
}

impl ColorSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set pre-sized to hold colors `< palette` without growing.
    pub fn with_palette(palette: u64) -> Self {
        Self {
            words: vec![0; palette.div_ceil(WORD_BITS) as usize],
        }
    }

    /// Inserts `color`; returns `true` if it was not present before.
    /// Grows the bitmap as needed, so any `u64` color id is accepted.
    #[inline]
    pub fn insert(&mut self, color: u64) -> bool {
        let word = (color / WORD_BITS) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (color % WORD_BITS);
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Whether `color` is in the set.
    #[inline]
    pub fn contains(&self, color: u64) -> bool {
        let word = (color / WORD_BITS) as usize;
        self.words.get(word).copied().unwrap_or(0) & (1u64 << (color % WORD_BITS)) != 0
    }

    /// How many members are `< palette` (one popcount per word).
    pub fn count_below(&self, palette: u64) -> u64 {
        let full = (palette / WORD_BITS) as usize;
        let mut count: u64 = self
            .words
            .iter()
            .take(full)
            .map(|w| u64::from(w.count_ones()))
            .sum();
        let tail = palette % WORD_BITS;
        if tail != 0 {
            if let Some(&w) = self.words.get(full) {
                count += u64::from((w & ((1u64 << tail) - 1)).count_ones());
            }
        }
        count
    }

    /// How many colors `< palette` are **not** in the set.
    pub fn count_free(&self, palette: u64) -> u64 {
        palette - self.count_below(palette)
    }

    /// The smallest color `< palette` not in the set, scanning a word at
    /// a time with `trailing_ones`.
    pub fn find_first_free(&self, palette: u64) -> Option<u64> {
        let mut base = 0u64;
        for &w in &self.words {
            if base >= palette {
                return None;
            }
            let free = u64::from(w.trailing_ones());
            if free < WORD_BITS {
                let c = base + free;
                return (c < palette).then_some(c);
            }
            base += WORD_BITS;
        }
        (base < palette).then_some(base)
    }

    /// The `n`-th smallest free color `< palette` (0-indexed), or `None`
    /// if fewer than `n + 1` colors are free.  Equivalent to indexing the
    /// sorted materialised free list, without building it.
    pub fn nth_free(&self, palette: u64, n: u64) -> Option<u64> {
        let mut remaining = n;
        let mut base = 0u64;
        while base < palette {
            let word = self
                .words
                .get((base / WORD_BITS) as usize)
                .copied()
                .unwrap_or(0);
            let mut free = !word;
            let tail = palette - base;
            if tail < WORD_BITS {
                free &= (1u64 << tail) - 1;
            }
            let here = u64::from(free.count_ones());
            if remaining < here {
                return Some(base + select_bit(free, remaining));
            }
            remaining -= here;
            base += WORD_BITS;
        }
        None
    }

    /// Empties the set, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_growth() {
        let mut s = ColorSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(3));
        assert!(!s.insert(3), "second insert reports already-present");
        assert!(s.contains(3));
        // Far past the initial capacity: the bitmap grows on demand.
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
        s.clear();
        assert!(!s.contains(3) && !s.contains(1000));
    }

    #[test]
    fn first_free_scans_words() {
        let mut s = ColorSet::new();
        assert_eq!(s.find_first_free(10), Some(0));
        for c in 0..130 {
            s.insert(c);
        }
        assert_eq!(s.find_first_free(130), None);
        assert_eq!(s.find_first_free(131), Some(130));
        assert_eq!(s.find_first_free(1000), Some(130));
        assert_eq!(ColorSet::new().find_first_free(0), None);
    }

    #[test]
    fn nth_free_matches_the_sorted_free_list() {
        let mut s = ColorSet::new();
        for c in [0u64, 1, 5, 64, 65, 127, 200] {
            s.insert(c);
        }
        for palette in [1u64, 6, 64, 66, 128, 129, 300] {
            let free: Vec<u64> = (0..palette).filter(|&c| !s.contains(c)).collect();
            for (i, &expect) in free.iter().enumerate() {
                assert_eq!(
                    s.nth_free(palette, i as u64),
                    Some(expect),
                    "palette {palette} index {i}"
                );
            }
            assert_eq!(s.nth_free(palette, free.len() as u64), None);
            assert_eq!(s.count_free(palette), free.len() as u64);
            assert_eq!(s.count_below(palette), palette - free.len() as u64);
        }
    }

    #[test]
    fn with_palette_presizes_without_changing_semantics() {
        let mut s = ColorSet::with_palette(100);
        assert_eq!(s.count_below(100), 0);
        assert!(s.insert(99));
        assert_eq!(s.count_below(100), 1);
        assert_eq!(s.find_first_free(1), Some(0));
    }
}
