//! Local stub of the `rand` crate (see `crates/compat/README.md`).
//!
//! Implements exactly the surface the `dcme_*` crates use — seeding a
//! [`rngs::StdRng`] from a `u64`, deriving child generators from a parent
//! stream ([`SeedableRng::from_rng`]), the [`RngExt`] sampling helpers
//! (uniform ranges via Lemire's widening-multiply rejection, so there is no
//! modulo bias), the [`distr::Bernoulli`] distribution and
//! [`seq::SliceRandom::shuffle`] — on top of a small, well-studied generator
//! (xoshiro256**, seeded via SplitMix64).  Everything is deterministic per
//! seed, which is the property the experiments actually rely on; statistical
//! quality beyond "not visibly patterned" is a non-goal for a stub.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core trait: a source of uniform 64-bit values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Splits a child generator off a parent stream (stub of
    /// `rand::SeedableRng::from_rng`): the child's stream is a pure function
    /// of the parent's state, and repeated calls yield independent streams.
    ///
    /// This is how the baselines derive per-node / per-round generators from
    /// one experiment seed without the streams overlapping.
    fn from_rng<S: RngCore + ?Sized>(source: &mut S) -> Self {
        Self::seed_from_u64(source.next_u64())
    }
}

/// Ranges (and other argument types) accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws a uniform value in `[0, span)` with Lemire's widening-multiply
/// rejection method — exactly uniform (no modulo bias), with an expected
/// `< 2` draws from `rng` for any `span`.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        // Reject the low leftovers of the last incomplete multiple of span.
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (stub of the method surface of `rand::Rng`).
pub trait RngExt: RngCore {
    /// Draws a uniform value from `range`.
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits are exact for any representable p.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Draws one value from a distribution (stub of `rand::Rng::sample`).
    fn sample<T, D: distr::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod distr {
    //! Distributions (stub of `rand::distr`).

    use super::RngCore;

    /// A distribution over values of type `T` (stub of
    /// `rand::distr::Distribution`).
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error returned for probabilities outside `[0, 1]`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BernoulliError {
        /// `p < 0`, `p > 1`, or `p` is NaN.
        InvalidProbability,
    }

    impl core::fmt::Display for BernoulliError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "probability is outside [0, 1]")
        }
    }

    impl std::error::Error for BernoulliError {}

    /// The Bernoulli distribution: `true` with probability `p` (stub of
    /// `rand::distr::Bernoulli`).
    ///
    /// One `next_u64` per sample, compared against the precomputed integer
    /// threshold `⌊p · 2⁶⁴⌋`, so the probability is exact to within `2⁻⁶⁴`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Bernoulli {
        threshold: u64,
        always_true: bool,
    }

    impl Bernoulli {
        /// Constructs the distribution; errors unless `0 ≤ p ≤ 1`.
        pub fn new(p: f64) -> Result<Self, BernoulliError> {
            if !(0.0..=1.0).contains(&p) {
                return Err(BernoulliError::InvalidProbability);
            }
            if p >= 1.0 {
                return Ok(Self {
                    threshold: 0,
                    always_true: true,
                });
            }
            Ok(Self {
                // p < 1, so p · 2^64 < 2^64 and the cast cannot saturate.
                threshold: (p * (u64::MAX as f64 + 1.0)) as u64,
                always_true: false,
            })
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // Always consume one draw so `p = 1` and `p < 1` advance the
            // stream identically (deterministic replays stay aligned).
            let v = rng.next_u64();
            self.always_true || v < self.threshold
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as the xoshiro authors advise.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence helpers (stub of `rand::seq`).

    use super::{RngCore, SampleRange};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Uniformly shuffles the slice (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn bool_probability_is_roughly_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn range_sampling_is_unbiased_over_a_skewed_span() {
        // A span that does not divide 2^64 (here 3) is exactly where modulo
        // sampling is biased; the rejection sampler must stay near-uniform.
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.random_range(0usize..3)] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!((9_500..10_500).contains(&c), "value {v} drawn {c} times");
        }
    }

    #[test]
    fn full_width_spans_sample_without_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let _ = rng.random_range(0u64..u64::MAX);
            let _ = rng.random_range(1u64..2); // singleton span
        }
    }

    #[test]
    fn bernoulli_matches_its_probability_and_rejects_bad_p() {
        use super::distr::{Bernoulli, BernoulliError, Distribution};
        let mut rng = StdRng::seed_from_u64(13);
        let d = Bernoulli::new(0.25).unwrap();
        let hits = (0..10_000).filter(|_| d.sample(&mut rng)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        let never = Bernoulli::new(0.0).unwrap();
        assert!((0..1000).all(|_| !never.sample(&mut rng)));
        let always = Bernoulli::new(1.0).unwrap();
        assert!((0..1000).all(|_| always.sample(&mut rng)));
        for bad in [-0.1, 1.1, f64::NAN] {
            assert_eq!(
                Bernoulli::new(bad).unwrap_err(),
                BernoulliError::InvalidProbability
            );
        }
    }

    #[test]
    fn sample_method_mirrors_distribution_sample() {
        use super::distr::Bernoulli;
        let d = Bernoulli::new(0.5).unwrap();
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        for _ in 0..100 {
            use super::distr::Distribution;
            assert_eq!(a.sample(d), d.sample(&mut b));
        }
    }

    #[test]
    fn from_rng_splits_deterministic_independent_streams() {
        let mut parent = StdRng::seed_from_u64(42);
        let mut child_a = StdRng::from_rng(&mut parent);
        let mut child_b = StdRng::from_rng(&mut parent);
        // Children differ from each other and are reproducible from the
        // same parent stream.
        let a: Vec<u64> = (0..16).map(|_| child_a.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| child_b.next_u64()).collect();
        assert_ne!(a, b);
        let mut parent2 = StdRng::seed_from_u64(42);
        let mut child_a2 = StdRng::from_rng(&mut parent2);
        let a2: Vec<u64> = (0..16).map(|_| child_a2.next_u64()).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }
}
