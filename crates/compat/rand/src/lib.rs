//! Local stub of the `rand` crate (see `crates/compat/README.md`).
//!
//! Implements exactly the surface the `dcme_*` crates use — seeding a
//! [`rngs::StdRng`] from a `u64`, the [`RngExt`] sampling helpers and
//! [`seq::SliceRandom::shuffle`] — on top of a small, well-studied generator
//! (xoshiro256**, seeded via SplitMix64).  Everything is deterministic per
//! seed, which is the property the experiments actually rely on; statistical
//! quality beyond "not visibly patterned" is a non-goal for a stub.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core trait: a source of uniform 64-bit values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges (and other argument types) accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Modulo sampling: the bias is < span/2^64, irrelevant here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (stub of the method surface of `rand::Rng`).
pub trait RngExt: RngCore {
    /// Draws a uniform value from `range`.
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits are exact for any representable p.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as the xoshiro authors advise.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence helpers (stub of `rand::seq`).

    use super::{RngCore, SampleRange};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Uniformly shuffles the slice (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn bool_probability_is_roughly_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }
}
