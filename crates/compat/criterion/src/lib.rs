//! Local stub of `criterion` (see `crates/compat/README.md`).
//!
//! A timing-only harness with the same bench-authoring surface the
//! workspace's benches use (`criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]).
//! Each benchmark runs `sample_size` measured samples after a small warm-up
//! and prints min / median / mean wall-clock times — no statistics engine,
//! no HTML reports, no regression tracking.  Swapping in the real criterion
//! is a one-line change in the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every bench function (stub of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    /// Benchmarks `f` with an explicit input (stub keeps criterion's shape;
    /// the input is simply passed through).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut g);
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Measures closures handed to it by a benchmark (stub of
/// `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples recorded)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{label:<50} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}   ({n} samples)",
        n = b.samples.len(),
    );
}

/// Bundles bench functions into a runnable group (stub of criterion's macro;
/// the config-customising arm is intentionally not supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        let mut group = c.benchmark_group("toy");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        for n in [10u64, 20] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>());
            });
        }
        group.finish();
    }

    criterion_group!(benches, toy);

    #[test]
    fn group_and_bencher_run() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
