//! Local stub of the `serde` facade (see `crates/compat/README.md`).
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset of the `serde` surface actually used by
//! the `dcme_*` crates: the `Serialize` / `Deserialize` traits as *markers*
//! and the corresponding derive macros.  No serialization format ships with
//! the workspace yet, so marker impls are all that is required; swapping this
//! stub for the real `serde` is a one-line change in the root `Cargo.toml`
//! once a registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// The real `serde::Serialize` has a `serialize` method; the stub keeps only
/// the trait bound so `#[derive(Serialize)]` and generic `T: Serialize`
/// bounds compile unchanged.
pub trait Serialize {}

/// Marker for types that can be deserialized from a borrowed buffer.
///
/// Mirrors the lifetime parameter of the real `serde::Deserialize<'de>` so
/// derived impls and bounds keep their exact shape.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable from any lifetime (stub of
/// `serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
