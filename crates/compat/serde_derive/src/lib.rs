//! Local stub of `serde_derive` (see `crates/compat/README.md`).
//!
//! The stub `serde` crate's `Serialize` / `Deserialize` traits are pure
//! markers, so the derives only need to name the type and emit empty impls.
//! The macros are written against `proc_macro` directly (no `syn` / `quote`,
//! which are equally unreachable without a registry).  Generic types are not
//! supported — every serde-derived type in this workspace is concrete — and
//! produce a `compile_error!` pointing here.

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum/union a derive was applied to and
/// whether it has a generic parameter list.
fn parse_item(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            return Err("stub serde_derive: expected a type name".into());
        };
        if let Some(TokenTree::Punct(p)) = tokens.next() {
            if p.as_char() == '<' {
                return Err("stub serde_derive does not support generic types; \
                     write the marker impl by hand (crates/compat/serde_derive)"
                    .into());
            }
        }
        return Ok(name.to_string());
    }
    Err("stub serde_derive: no struct/enum/union found".into())
}

fn marker_impl(input: TokenStream, template: &str) -> TokenStream {
    match parse_item(input) {
        Ok(name) => template.replace("$Name", &name).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the stub marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl ::serde::Serialize for $Name {}")
}

/// Derives the stub marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl<'de> ::serde::Deserialize<'de> for $Name {}")
}
