//! Local stub of `proptest` (see `crates/compat/README.md`).
//!
//! Supports the subset of the proptest surface the workspace's property
//! tests use:
//!
//! * the [`proptest!`] block macro with an optional
//!   `#![proptest_config(...)]` inner attribute,
//! * range strategies (`0u64..100`, `0.0f64..1.0`) and
//!   [`sample::select`],
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case is
//! reported with its generated arguments, which — because generation is
//! deterministic per test name — is reproducible by just re-running the
//! test.  Cases rejected by `prop_assume!` do not count toward the
//! configured case budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// The generator type threaded through all strategies.
    pub type TestRng = StdRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut TestRng) -> f64 {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    use rand::RngCore;

    /// Uniform choice from a fixed list; see [`crate::sample::select`].
    pub struct Select<T>(pub(crate) Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select() needs a non-empty list");
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit collections.

    use super::strategy::Select;

    /// Strategy yielding a uniformly chosen element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

pub mod test_runner {
    //! The (much simplified) case runner driven by [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (stub of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) is overkill for simulator-backed
            // properties; tests that want more ask via with_cases().
            Self { cases: 64 }
        }
    }

    /// Outcome of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` and is not counted.
        Reject(String),
        /// An assertion failed; the runner panics with this message.
        Fail(String),
    }

    /// Deterministic per-test generator so failures reproduce on re-run.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prop {
    //! The `prop::` path exposed by the prelude (`prop::sample::select`, …).

    pub use super::sample;
    pub use super::strategy;
}

pub mod prelude {
    //! One-stop import for property tests, mirroring `proptest::prelude`.

    pub use super::prop;
    pub use super::strategy::Strategy;
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares a block of property tests; see the crate docs for the supported
/// subset of the real macro's grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest stub: {} of {} attempted cases were rejected by \
                     prop_assume!; weaken the assumption or widen the strategy",
                    attempts - accepted,
                    attempts,
                );
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                let case = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match case {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed after {} cases: {}\n  args: {}",
                            stringify!($name),
                            accepted,
                            msg,
                            format!(concat!($(stringify!($arg), " = {:?}  ",)+), $(&$arg,)+),
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.  Like the
/// real macro, an optional trailing format string + args replaces the
/// default message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{:?} != {:?} ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} ({:?} != {:?})", format!($($fmt)+), l, r);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "{:?} == {:?} ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_assume_work(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a < 100 && b < 100);
        }

        #[test]
        fn select_picks_members(q in prop::sample::select(vec![2u64, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&q));
        }

        #[test]
        fn floats_stay_in_range(p in 0.25f64..0.75) {
            prop_assert!((0.25..0.75).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_panic_with_args() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x is small");
            }
        }
        always_fails();
    }
}
